#include "adaptive/retuner.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace omega::adaptive {

namespace {

/// The shared QoS-constraint predicate, with this solver's option plumbing.
/// `effective_tail` honours `auto_tail`: with it on, the estimator's
/// per-link tail verdict replaces the static model here too, so the
/// adaptive engine's operating points stop mis-modeling heavy tails.
bool feasible_point(const fd::qos_spec& qos, const fd::link_estimate& link,
                    const fd::configurator_options& copts, double eta_s,
                    double delta_s, double margin) {
  return fd::qos_constraints_hold(qos, link, fd::effective_tail(link, copts),
                                  eta_s, delta_s, margin);
}

fd::fd_params solve_min_detection(const fd::qos_spec& qos,
                                  const fd::link_estimate& link,
                                  const retuner_options& opts) {
  const double total = to_seconds(qos.detection_time);
  // The budget is a floor on eta, but eta must leave room for a positive
  // delta within the detection bound: clamp a misconfigured budget.
  const double budget =
      std::clamp(opts.eta_budget > duration{0} ? to_seconds(opts.eta_budget)
                                               : total / 4.0,
                 0.0, 0.9 * total);
  const double eta_max = std::max(budget, total / 2.0);
  const int eta_steps = std::max(opts.eta_steps, 1);
  const int delta_steps = std::max(opts.delta_steps, 4);

  std::optional<fd::fd_params> best;
  double best_latency = std::numeric_limits<double>::infinity();

  // eta sweeps up from the budget (never below it: rate is capped); delta
  // sweeps up from small until the point becomes feasible — the first
  // feasible delta is the smallest, and latency delta + eta/2 then only
  // grows with eta unless larger eta admits no smaller delta, so we still
  // scan all eta values (the search space is tiny).
  for (int i = 0; i <= eta_steps; ++i) {
    const double eta = budget + (eta_max - budget) * static_cast<double>(i) /
                                    static_cast<double>(eta_steps);
    if (eta <= 0.0 || eta >= total) continue;
    const double delta_max = total - eta;
    for (int j = 1; j <= delta_steps; ++j) {
      const double delta =
          delta_max * static_cast<double>(j) / static_cast<double>(delta_steps);
      if (!feasible_point(qos, link, opts.configurator, eta, delta,
                          opts.adopt_margin)) {
        continue;
      }
      const double latency = delta + eta / 2.0;
      if (latency < best_latency) {
        best_latency = latency;
        const duration eta_d = from_seconds(eta);
        best = fd::fd_params{eta_d, from_seconds(delta), true};
      }
      break;  // larger delta at this eta is feasible but strictly slower
    }
  }
  if (best) return *best;
  // Nothing within the rate budget can hold the QoS on this link: see
  // retuner_options::rate_cap_hard for the policy choice. The clamped
  // budget keeps the fallback delta non-negative.
  if (opts.rate_cap_hard) {
    const duration eta_d = from_seconds(budget);
    return fd::fd_params{eta_d, qos.detection_time - eta_d, false};
  }
  return fd::configure(qos, link, opts.configurator);
}

/// Smallest value of the geometric grid {base * step^n} that is >= x.
double round_up_geometric(double x, double base, double step) {
  if (x <= base) return base;
  const double n = std::ceil(std::log(x / base) / std::log(step));
  return base * std::pow(step, n);
}

/// Conservative coarse quantization of a link estimate (see
/// retuner_options::quantize_inputs).
fd::link_estimate quantize(const fd::link_estimate& link) {
  fd::link_estimate q = link;
  // Loss: round up onto a 1-2-5 decade grid, floored at the estimator's
  // own certification floor (~0.2%).
  static constexpr double kLossGrid[] = {0.002, 0.005, 0.01, 0.02, 0.05,
                                         0.1,   0.2,   0.5,  1.0};
  q.loss_probability = 1.0;
  for (double g : kLossGrid) {
    if (link.loss_probability <= g) {
      q.loss_probability = g;
      break;
    }
  }
  // Delays: round up onto a 1.5^n grid anchored at 100 us. The grid is
  // deliberately coarse: a true delay sitting near a fine cell boundary
  // would flip cells under EWMA wobble and thrash the retuner.
  q.delay_mean = from_seconds(
      round_up_geometric(to_seconds(link.delay_mean), 100e-6, 1.5));
  q.delay_stddev = from_seconds(
      round_up_geometric(to_seconds(link.delay_stddev), 100e-6, 1.5));
  return q;
}

}  // namespace

fd::fd_params retuner::solve(const fd::qos_spec& qos,
                             const fd::link_estimate& raw_link,
                             const retuner_options& opts) {
  if (raw_link.samples < opts.configurator.min_samples) {
    return fd::cold_start_params(qos);
  }
  const fd::link_estimate link =
      opts.quantize_inputs ? quantize(raw_link) : raw_link;
  switch (opts.objective) {
    case tuning_objective::paper_max_eta:
      return fd::configure(qos, link, opts.configurator);
    case tuning_objective::min_detection:
      return solve_min_detection(qos, link, opts);
  }
  return fd::cold_start_params(qos);
}

bool retuner::point_feasible(const fd::qos_spec& qos,
                             const fd::link_estimate& raw_link,
                             const fd::fd_params& params,
                             const retuner_options& opts, double margin) {
  if (raw_link.samples < opts.configurator.min_samples) return true;
  const fd::link_estimate link =
      opts.quantize_inputs ? quantize(raw_link) : raw_link;
  return feasible_point(qos, link, opts.configurator, to_seconds(params.eta),
                        to_seconds(params.delta), margin);
}

std::string_view to_string(qos_class cls) {
  switch (cls) {
    case qos_class::interactive: return "interactive";
    case qos_class::background: return "background";
  }
  return "unknown";
}

retuner::retuner(fd::qos_spec qos, qos_class cls, retuner_options opts)
    : qos_(qos), class_(cls), opts_(opts) {
  // The class selects the objective; `background` is exactly the paper's
  // cheapest-point solver (largest feasible eta == minimum heartbeat rate).
  if (class_ == qos_class::background) {
    opts_.objective = tuning_objective::paper_max_eta;
  }
  group_.current = fd::cold_start_params(qos);
}

bool retuner::outside_dead_band(const fd::fd_params& current,
                                const fd::fd_params& candidate) const {
  if (candidate.qos_feasible != current.qos_feasible) return true;
  const double eta_cur = std::max(to_seconds(current.eta), 1e-9);
  const double delta_cur = std::max(to_seconds(current.delta), 1e-9);
  const double eta_rel =
      std::abs(to_seconds(candidate.eta) - eta_cur) / eta_cur;
  const double delta_rel =
      std::abs(to_seconds(candidate.delta) - delta_cur) / delta_cur;
  return eta_rel > opts_.eta_band || delta_rel > opts_.delta_band;
}

std::optional<fd::fd_params> retuner::evaluate_damped(
    damped_state& state, const fd::link_estimate& link, time_point now) {
  // Dwell gate first: inside the dwell window the current point stands no
  // matter what the estimates claim. This is the oscillation bound.
  if (state.adopted_once && now < state.last_retune + opts_.min_dwell) {
    return std::nullopt;
  }
  const fd::fd_params candidate = solve(qos_, link, opts_);
  // A current point that claims QoS feasibility but no longer delivers it
  // under the latest estimate is stale: the dead band must not keep it.
  // Judged with the lenient margin (Schmitt trigger, see retuner_options).
  const bool current_broken =
      state.current.qos_feasible &&
      !point_feasible(qos_, link, state.current, opts_, opts_.keep_margin);
  if (state.adopted_once && !current_broken &&
      !outside_dead_band(state.current, candidate)) {
    return std::nullopt;
  }
  // A candidate identical to the held point is never an adoption — on a
  // fresh state too, or every cold-started instance would count one no-op
  // "retune" and the bench retune metrics would mostly count churn.
  if (candidate == state.current) return std::nullopt;
  state.current = candidate;
  state.adopted_once = true;
  state.last_retune = now;
  ++retune_count_;
  return state.current;
}

std::optional<fd::fd_params> retuner::evaluate(const fd::link_estimate& link,
                                               time_point now) {
  return evaluate_damped(group_, link, now);
}

std::optional<fd::fd_params> retuner::evaluate_peer(
    node_id peer, const fd::link_estimate& link, time_point now) {
  auto [it, inserted] = peers_.try_emplace(peer);
  if (inserted) it->second.current = fd::cold_start_params(qos_);
  return evaluate_damped(it->second, link, now);
}

void retuner::forget_peer(node_id peer) { peers_.erase(peer); }

const fd::fd_params& retuner::current(node_id peer) const {
  auto it = peers_.find(peer);
  return it != peers_.end() ? it->second.current : group_.current;
}

}  // namespace omega::adaptive
