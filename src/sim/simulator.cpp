#include "sim/simulator.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace omega::sim {

namespace {

constexpr timer_id make_id(std::uint32_t slot, std::uint32_t gen) {
  // slot + 1 keeps 0 == no_timer; the generation disambiguates reuse, so a
  // cancel of an already-fired id can never hit the slot's next tenant.
  return (static_cast<timer_id>(gen) << 32) | (slot + 1);
}

}  // namespace

std::uint32_t simulator::acquire_slot() {
  if (free_head_ != kNpos) {
    const std::uint32_t idx = free_head_;
    free_head_ = slots_[idx].next_free;
    return idx;
  }
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void simulator::release_slot(std::uint32_t idx) {
  slot& s = slots_[idx];
  s.fn.reset();
  s.armed = false;
  ++s.gen;  // invalidates the id and any stale heap record
  s.next_free = free_head_;
  free_head_ = idx;
}

timer_id simulator::schedule_at(time_point when, unique_task fn) {
  if (when < now_) when = now_;  // never schedule into the past
  const std::uint32_t idx = acquire_slot();
  slot& s = slots_[idx];
  s.fn = std::move(fn);
  s.armed = true;
  heap_.push_back(event{when, next_seq_++, idx, s.gen});
  std::push_heap(heap_.begin(), heap_.end(), later);
  return make_id(idx, s.gen);
}

timer_id simulator::schedule_after(duration after, unique_task fn) {
  if (after < duration{0}) after = duration{0};
  return schedule_at(now_ + after, std::move(fn));
}

void simulator::cancel(timer_id id) {
  const std::uint32_t idx = static_cast<std::uint32_t>(id & 0xffffffffu) - 1;
  const std::uint32_t gen = static_cast<std::uint32_t>(id >> 32);
  if (idx >= slots_.size()) return;  // no_timer or never-issued id
  slot& s = slots_[idx];
  if (!s.armed || s.gen != gen) return;  // already fired or cancelled
  release_slot(idx);
  ++stale_in_heap_;  // its heap record is purged lazily (or compacted now)
  if (heap_.size() >= kCompactMin && stale_in_heap_ * 2 > heap_.size()) {
    compact();
  }
}

void simulator::compact() {
  std::erase_if(heap_, [this](const event& ev) { return !live(ev); });
  std::make_heap(heap_.begin(), heap_.end(), later);
  stale_in_heap_ = 0;
}

void simulator::purge_top() {
  while (!heap_.empty() && !live(heap_.front())) {
    std::pop_heap(heap_.begin(), heap_.end(), later);
    heap_.pop_back();
    assert(stale_in_heap_ > 0);
    --stale_in_heap_;
  }
}

bool simulator::fire_next() {
  purge_top();
  if (heap_.empty()) return false;
  const event ev = heap_.front();
  std::pop_heap(heap_.begin(), heap_.end(), later);
  heap_.pop_back();
  // Move the callback out before running: the callback may re-schedule or
  // cancel other timers (including reusing this very slot).
  unique_task fn = std::move(slots_[ev.slot].fn);
  release_slot(ev.slot);
  now_ = ev.when;
  ++executed_;
  fn();
  return true;
}

void simulator::run_until(time_point deadline) {
  for (;;) {
    // Peek through cancelled entries to find the next live event time.
    purge_top();
    if (heap_.empty() || heap_.front().when > deadline) break;
    fire_next();
  }
  now_ = deadline;
}

void simulator::run_all() {
  while (fire_next()) {
  }
}

bool simulator::step() { return fire_next(); }

}  // namespace omega::sim
