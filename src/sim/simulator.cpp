#include "sim/simulator.hpp"

#include <utility>

namespace omega::sim {

timer_id simulator::schedule_at(time_point when, std::function<void()> fn) {
  const timer_id id = next_id_++;
  if (when < now_) when = now_;  // never schedule into the past
  queue_.push(event{when, next_seq_++, id});
  callbacks_.emplace(id, std::move(fn));
  return id;
}

timer_id simulator::schedule_after(duration after, std::function<void()> fn) {
  if (after < duration{0}) after = duration{0};
  return schedule_at(now_ + after, std::move(fn));
}

void simulator::cancel(timer_id id) {
  auto it = callbacks_.find(id);
  if (it == callbacks_.end()) return;  // already fired or cancelled
  callbacks_.erase(it);
  cancelled_.insert(id);
}

bool simulator::fire_next() {
  while (!queue_.empty()) {
    const event ev = queue_.top();
    queue_.pop();
    if (auto it = cancelled_.find(ev.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;  // purged lazily
    }
    auto cb_it = callbacks_.find(ev.id);
    if (cb_it == callbacks_.end()) continue;  // defensive; should not happen
    // Move the callback out before running: the callback may re-schedule or
    // cancel other timers (including scheduling a timer that reuses no slot).
    std::function<void()> fn = std::move(cb_it->second);
    callbacks_.erase(cb_it);
    now_ = ev.when;
    ++executed_;
    fn();
    return true;
  }
  return false;
}

void simulator::run_until(time_point deadline) {
  while (!queue_.empty()) {
    // Peek through cancelled entries to find the next live event time.
    while (!queue_.empty() && cancelled_.count(queue_.top().id) > 0) {
      cancelled_.erase(queue_.top().id);
      queue_.pop();
    }
    if (queue_.empty() || queue_.top().when > deadline) break;
    fire_next();
  }
  now_ = deadline;
}

void simulator::run_all() {
  while (fire_next()) {
  }
}

bool simulator::step() { return fire_next(); }

}  // namespace omega::sim
