// Discrete-event simulation kernel.
//
// A single-threaded event loop over virtual time. Events at equal times fire
// in scheduling order (FIFO), which makes runs fully deterministic for a
// fixed RNG seed. The simulator implements the substrate interfaces
// (`clock_source`, `timer_service`) that all protocol code is written
// against, so the entire leader-election service runs unmodified on top of
// it. This kernel is the stand-in for the paper's 12-workstation LAN
// testbed (see DESIGN.md §1).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/executor.hpp"
#include "common/time.hpp"

namespace omega::sim {

class simulator final : public clock_source, public timer_service {
 public:
  simulator() = default;

  // clock_source
  [[nodiscard]] time_point now() const override { return now_; }

  // timer_service
  timer_id schedule_at(time_point when, std::function<void()> fn) override;
  timer_id schedule_after(duration after, std::function<void()> fn) override;
  void cancel(timer_id id) override;

  /// Runs events until the queue is empty or virtual time would pass
  /// `deadline`; leaves `now() == deadline`.
  void run_until(time_point deadline);

  /// Runs events until the queue drains completely (use with care: periodic
  /// protocol timers re-arm themselves and never drain).
  void run_all();

  /// Runs at most one event. Returns false when the queue is empty.
  bool step();

  /// True if no events are pending (cancelled events are purged lazily and
  /// do not count).
  [[nodiscard]] bool idle() const { return live_events() == 0; }

  /// Number of scheduled-but-not-cancelled events.
  [[nodiscard]] std::size_t live_events() const {
    return queue_.size() - cancelled_.size();
  }

  /// Total events executed since construction (simulation cost measure).
  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }

 private:
  struct event {
    time_point when;
    std::uint64_t seq;  // tie-breaker: FIFO among equal times
    timer_id id;
  };
  struct event_order {
    bool operator()(const event& a, const event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  /// Pops and runs the next live event, if any.
  bool fire_next();

  time_point now_{};
  std::uint64_t next_seq_ = 1;
  timer_id next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::priority_queue<event, std::vector<event>, event_order> queue_;
  // Callbacks are stored out-of-band so `event` stays cheap to copy in the
  // heap; cancelled ids are purged when popped.
  std::unordered_map<timer_id, std::function<void()>> callbacks_;
  std::unordered_set<timer_id> cancelled_;
};

}  // namespace omega::sim
