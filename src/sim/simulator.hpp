// Discrete-event simulation kernel.
//
// A single-threaded event loop over virtual time. Events at equal times fire
// in scheduling order (FIFO), which makes runs fully deterministic for a
// fixed RNG seed. The simulator implements the substrate interfaces
// (`clock_source`, `timer_service`) that all protocol code is written
// against, so the entire leader-election service runs unmodified on top of
// it. This kernel is the stand-in for the paper's 12-workstation LAN
// testbed (see DESIGN.md §1).
//
// Hot-path layout (DESIGN.md §9): callbacks live in a slab of small-buffer
// `unique_task` slots recycled through a free list; the binary heap stores
// 24-byte (when, seq, slot, generation) records. A `timer_id` encodes
// (generation << 32 | slot + 1), so `cancel` is an O(1) slot release with
// no hash lookups — stale heap records are skipped lazily on pop and purged
// eagerly once they outnumber the live ones. Scheduling, cancelling and
// firing a timer are all allocation-free in steady state.
#pragma once

#include <cstdint>
#include <vector>

#include "common/executor.hpp"
#include "common/time.hpp"

namespace omega::sim {

class simulator final : public clock_source, public timer_service {
 public:
  simulator() = default;

  // clock_source
  [[nodiscard]] time_point now() const override { return now_; }

  // timer_service
  timer_id schedule_at(time_point when, unique_task fn) override;
  timer_id schedule_after(duration after, unique_task fn) override;
  void cancel(timer_id id) override;

  /// Runs events until the queue is empty or virtual time would pass
  /// `deadline`; leaves `now() == deadline`.
  void run_until(time_point deadline);

  /// Runs events until the queue drains completely (use with care: periodic
  /// protocol timers re-arm themselves and never drain).
  void run_all();

  /// Runs at most one event. Returns false when the queue is empty.
  bool step();

  /// True if no events are pending (cancelled events are purged lazily and
  /// do not count).
  [[nodiscard]] bool idle() const { return live_events() == 0; }

  /// Number of scheduled-but-not-cancelled events.
  [[nodiscard]] std::size_t live_events() const {
    return heap_.size() - stale_in_heap_;
  }

  /// Total events executed since construction (simulation cost measure).
  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }

  /// Heap records, cancelled-but-not-yet-purged ones included (white-box:
  /// the compaction tests watch this against `live_events`).
  [[nodiscard]] std::size_t heap_size() const { return heap_.size(); }
  /// High-water mark of concurrently pending timers (slab slots ever built).
  [[nodiscard]] std::size_t slab_slots() const { return slots_.size(); }

 private:
  struct event {
    time_point when;
    std::uint64_t seq;   // tie-breaker: FIFO among equal times
    std::uint32_t slot;  // slab index of the callback
    std::uint32_t gen;   // must match the slot's generation to be live
  };
  /// std::push_heap-style comparator: "a fires after b" puts the earliest
  /// (when, seq) at the front.
  static bool later(const event& a, const event& b) {
    if (a.when != b.when) return a.when > b.when;
    return a.seq > b.seq;
  }

  struct slot {
    unique_task fn;
    std::uint32_t gen = 1;       // bumped on every release; 1:1 with heap use
    std::uint32_t next_free = kNpos;
    bool armed = false;
  };
  static constexpr std::uint32_t kNpos = 0xffffffffu;
  /// Below this queue size lazy purge is cheap enough; no eager compaction.
  static constexpr std::size_t kCompactMin = 64;

  [[nodiscard]] bool live(const event& ev) const {
    const slot& s = slots_[ev.slot];
    return s.armed && s.gen == ev.gen;
  }
  /// Pops and runs the next live event, if any.
  bool fire_next();
  /// Pops stale records off the heap top (run_until peeks through them).
  void purge_top();
  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t idx);
  /// Drops every stale record and re-heapifies; total (when, seq) order
  /// makes the rebuilt heap equivalent, so delivery order is unchanged.
  void compact();

  time_point now_{};
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  std::vector<event> heap_;
  std::vector<slot> slots_;
  std::uint32_t free_head_ = kNpos;
  std::size_t stale_in_heap_ = 0;
};

}  // namespace omega::sim
