#include "obs/causal_graph.hpp"

#include <algorithm>

namespace omega::obs {

namespace {

/// (node, seq) packed as the resolution key — the coordination-free unique
/// name of one trace event (see common/causality.hpp).
std::uint64_t event_key(node_id node, std::uint64_t seq) {
  // seq is per-node and dense; 40 bits (~10^12 events) is far beyond any
  // ring's lifetime, so the packed key cannot collide in practice.
  return (static_cast<std::uint64_t>(node.value()) << 40) ^ seq;
}

/// Kinds excluded from linkage accounting: operational bookkeeping with no
/// causal role in a failover (mirrors sink::potent).
bool causally_inert(event_kind kind) {
  return kind == event_kind::retune ||
         kind == event_kind::unknown_group_drop ||
         kind == event_kind::unknown_peer_drop;
}

}  // namespace

causal_graph causal_graph::build(std::span<const trace_event> events) {
  causal_graph g;
  g.events_.assign(events.begin(), events.end());
  g.cause_.assign(g.events_.size(), -1);
  g.dangling_.assign(g.events_.size(), 0);

  std::unordered_map<std::uint64_t, int> index;
  index.reserve(g.events_.size());
  for (std::size_t i = 0; i < g.events_.size(); ++i) {
    const trace_event& ev = g.events_[i];
    if (ev.node.valid()) index.emplace(event_key(ev.node, ev.seq), static_cast<int>(i));
  }
  for (std::size_t i = 0; i < g.events_.size(); ++i) {
    const cause_id& c = g.events_[i].cause;
    if (!c.valid()) continue;  // root
    auto it = index.find(event_key(c.origin, c.seq));
    if (it == index.end()) {
      // The provoking event was overwritten by ring wraparound (or its
      // ring was never collected): record the evidence gap instead of
      // pretending this is a spontaneous root.
      g.dangling_[i] = 1;
      continue;
    }
    // A cause id must name an *earlier* event of its origin ring; a stamp
    // resolving to the event itself (or a corrupted forward reference on
    // the same node) is dropped as dangling rather than risking cycles.
    if (it->second == static_cast<int>(i)) {
      g.dangling_[i] = 1;
      continue;
    }
    g.cause_[i] = it->second;
  }
  return g;
}

std::optional<time_point> causal_graph::at_on(const trace_event& ev,
                                              timeline tl) const {
  if (tl == timeline::sim) return ev.at;
  if (ev.wall_us < 0) return std::nullopt;
  return time_point{usec(ev.wall_us)};
}

std::vector<char> causal_graph::anchor_victim_evidence(
    node_id victim_node, process_id victim_pid) const {
  // anchored[i]: -1 unknown, 0 no, 1 yes, 2 on the current DFS path (cycle
  // guard — honest stamps cannot cycle, but the graph is built from
  // untrusted ring contents).
  std::vector<char> anchored(events_.size(), -1);
  std::vector<int> stack;
  for (std::size_t i = 0; i < events_.size(); ++i) {
    if (anchored[i] != -1) continue;
    stack.push_back(static_cast<int>(i));
    while (!stack.empty()) {
      const int v = stack.back();
      if (anchored[v] == 0 || anchored[v] == 1) {
        stack.pop_back();
        continue;
      }
      if (victim_evidence(events_[v], victim_node, victim_pid)) {
        anchored[v] = 1;
        stack.pop_back();
        continue;
      }
      const int parent = cause_[v];
      if (parent < 0) {
        anchored[v] = 0;
        stack.pop_back();
        continue;
      }
      if (anchored[parent] == 0 || anchored[parent] == 1) {
        anchored[v] = anchored[parent];
        stack.pop_back();
        continue;
      }
      if (anchored[parent] == 2) {  // cycle: refuse to anchor through it
        anchored[v] = 0;
        stack.pop_back();
        continue;
      }
      anchored[v] = 2;
      stack.push_back(parent);
    }
  }
  // Resolve any nodes left marked in-path by the revisit pass above.
  for (std::size_t i = 0; i < anchored.size(); ++i) {
    if (anchored[i] == 2) {
      const int parent = cause_[i];
      anchored[i] = parent >= 0 && anchored[parent] == 1 ? 1 : 0;
    }
  }
  return anchored;
}

causal_graph::linkage_report causal_graph::linkage(node_id victim_node,
                                                   process_id victim_pid,
                                                   time_point start,
                                                   time_point end,
                                                   timeline tl) const {
  linkage_report r;
  const std::vector<char> anchored =
      anchor_victim_evidence(victim_node, victim_pid);
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const trace_event& ev = events_[i];
    const auto at = at_on(ev, tl);
    if (!at || *at <= start || *at > end) continue;
    if (causally_inert(ev.kind)) continue;
    ++r.considered;
    if (anchored[i] == 1) ++r.linked;
    if (dangling_[i]) ++r.dangling;
    if (victim_evidence(ev, victim_node, victim_pid)) ++r.evidence_roots;
  }
  return r;
}

outage_budget causal_graph::attribute_outage(
    node_id victim_node, process_id victim_pid, time_point start,
    time_point end, std::optional<process_id> resolved_leader,
    timeline tl) const {
  outage_budget b;
  b.victim = victim_node;
  b.start = start;
  b.end = end;
  if (end <= start) return b;

  // Detection: earliest victim evidence in the window, on any node —
  // identical to the windowed forensics rule.
  std::optional<time_point> t_detect;
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const auto at = at_on(events_[i], tl);
    if (!at || *at <= start || *at > end) continue;
    if (!victim_evidence(events_[i], victim_node, victim_pid)) continue;
    if (!t_detect || *at < *t_detect) t_detect = *at;
  }
  if (!t_detect) return b;
  b.saw_detection = true;
  b.detection_s = to_seconds(*t_detect - start);

  // Engagement: the earliest survivor engagement the DAG links to the
  // victim evidence — causally certified, not merely co-timed. When no
  // engagement is linked (stamping off, rings wrapped), fall back to the
  // windowed rule so both attributions stay comparable.
  const std::vector<char> anchored =
      anchor_victim_evidence(victim_node, victim_pid);
  std::optional<time_point> t_engage_linked;
  std::optional<time_point> t_engage_any;
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const auto at = at_on(events_[i], tl);
    if (!at || *at < *t_detect || *at > end) continue;
    if (!election_engagement(events_[i], victim_node, victim_pid,
                             resolved_leader)) {
      continue;
    }
    if (!t_engage_any || *at < *t_engage_any) t_engage_any = *at;
    if (anchored[i] == 1 && (!t_engage_linked || *at < *t_engage_linked)) {
      t_engage_linked = *at;
    }
  }
  const std::optional<time_point> t_engage =
      t_engage_linked ? t_engage_linked : t_engage_any;
  if (!t_engage) return b;
  b.saw_engagement = true;
  b.dissemination_s = to_seconds(*t_engage - *t_detect);
  b.election_s = to_seconds(end - *t_engage);
  return b;
}

std::size_t causal_graph::wall_skew_violations() const {
  std::size_t n = 0;
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const int parent = cause_[i];
    if (parent < 0) continue;
    if (events_[i].wall_us < 0 || events_[parent].wall_us < 0) continue;
    if (events_[i].wall_us < events_[parent].wall_us) ++n;
  }
  return n;
}

}  // namespace omega::obs
