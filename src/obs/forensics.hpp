// Failover forensics: attributing a leadership outage's latency budget.
//
// Given the merged multi-node trace around one leadership outage — from
// the instant the old leader died (`start`) to the instant the cluster
// agreed on a live replacement (`end`) — `attribute_outage` partitions the
// window into the three phases the paper's analysis distinguishes:
//
//   detection      start .. first suspicion of the victim anywhere
//   dissemination  first suspicion .. first election engagement (a survivor
//                  promotes, flips candidate, enters the omega_l
//                  competition, or locally elects a non-victim leader)
//   election       first engagement .. end (convergence of every observer)
//
// The phases tile the window by construction, so when both boundary events
// are found the attribution is exact (fraction = 1). Missing evidence —
// e.g. the ring wrapped past the suspicion, or the victim was not a leader
// so no re-election ran — leaves the corresponding phase unattributed and
// the fraction below 1; the acceptance gate in the harness tests requires
// >= 95%. This extends the coarse per-level blame split of
// `metrics/hierarchy_metrics.hpp` with per-outage, per-phase timing.
#pragma once

#include <optional>
#include <span>

#include "common/ids.hpp"
#include "common/stats.hpp"
#include "common/time.hpp"
#include "obs/trace.hpp"

namespace omega::obs {

struct outage_budget {
  node_id victim = node_id::invalid();
  time_point start{};
  time_point end{};

  double detection_s = 0.0;
  double dissemination_s = 0.0;
  double election_s = 0.0;

  /// Which phase boundaries the trace actually evidenced.
  bool saw_detection = false;
  bool saw_engagement = false;

  [[nodiscard]] double window_s() const { return to_seconds(end - start); }
  /// Phases lacking boundary evidence are left at 0, so this is simply the
  /// evidenced part of the window.
  [[nodiscard]] double attributed_s() const {
    return detection_s + dissemination_s + election_s;
  }
  [[nodiscard]] double attributed_fraction() const {
    const double w = window_s();
    return w > 0.0 ? attributed_s() / w : 0.0;
  }
};

/// Replays `events` (any order; filtered to (start, end]) and attributes
/// the outage window. `victim_node` / `victim_pid` identify the crashed
/// leader; `resolved_leader`, when known, restricts the final
/// leader_change evidence to the leader the experiment says won.
[[nodiscard]] outage_budget attribute_outage(
    std::span<const trace_event> events, node_id victim_node,
    process_id victim_pid, time_point start, time_point end,
    std::optional<process_id> resolved_leader = std::nullopt);

/// The two evidence predicates the attribution is built from, shared with
/// the causal-DAG variant (obs/causal_graph.hpp) so both attribute with
/// identical rules.
///
/// Detection evidence: the event is direct FD/eviction evidence about the
/// victim (a suspicion of its node, an accusation naming it, its eviction).
[[nodiscard]] bool victim_evidence(const trace_event& ev, node_id victim_node,
                                   process_id victim_pid);
/// Election engagement: a survivor observably enters the succession race
/// (promotes, flips into candidacy, enters the competition, or locally
/// elects a live replacement — restricted to `resolved_leader` when known).
[[nodiscard]] bool election_engagement(
    const trace_event& ev, node_id victim_node, process_id victim_pid,
    const std::optional<process_id>& resolved_leader);

/// Aggregates budgets across the re-elections of one run.
struct forensics_summary {
  running_stats detection;
  running_stats dissemination;
  running_stats election;
  running_stats fraction;

  void add(const outage_budget& b) {
    detection.add(b.detection_s);
    dissemination.add(b.dissemination_s);
    election.add(b.election_s);
    fraction.add(b.attributed_fraction());
  }
};

}  // namespace omega::obs
