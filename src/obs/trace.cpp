#include "obs/trace.hpp"

namespace omega::obs {

std::string_view to_string(event_kind kind) {
  switch (kind) {
    case event_kind::leader_change: return "leader_change";
    case event_kind::suspicion_raised: return "suspicion_raised";
    case event_kind::suspicion_cleared: return "suspicion_cleared";
    case event_kind::accusation_sent: return "accusation_sent";
    case event_kind::accusation_received: return "accusation_received";
    case event_kind::candidacy_flip: return "candidacy_flip";
    case event_kind::competition_enter: return "competition_enter";
    case event_kind::competition_withdraw: return "competition_withdraw";
    case event_kind::member_join: return "member_join";
    case event_kind::member_leave: return "member_leave";
    case event_kind::member_evicted: return "member_evicted";
    case event_kind::promotion: return "promotion";
    case event_kind::demotion: return "demotion";
    case event_kind::retune: return "retune";
    case event_kind::unknown_group_drop: return "unknown_group_drop";
    case event_kind::unknown_peer_drop: return "unknown_peer_drop";
  }
  return "unknown";
}

ring_recorder::ring_recorder(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(capacity_);
}

std::uint64_t ring_recorder::record(const trace_event& ev) {
  trace_event stamped = ev;
  stamped.seq = next_seq_++;
  if (ring_.size() < capacity_) {
    ring_.push_back(stamped);
  } else {
    ring_[write_pos_] = stamped;
    write_pos_ = (write_pos_ + 1) % capacity_;
    ++dropped_;
  }
  return stamped.seq;
}

std::vector<trace_event> ring_recorder::events() const {
  std::vector<trace_event> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;  // push_back order is seq order
  } else {
    // The ring is full; the oldest retained event sits where the next
    // wraparound write would land.
    out.insert(out.end(),
               ring_.begin() + static_cast<std::ptrdiff_t>(write_pos_),
               ring_.end());
    out.insert(out.end(), ring_.begin(),
               ring_.begin() + static_cast<std::ptrdiff_t>(write_pos_));
  }
  return out;
}

void ring_recorder::clear() {
  ring_.clear();
  write_pos_ = 0;
}

}  // namespace omega::obs
