#include "obs/metrics.hpp"

#include <algorithm>
#include <stdexcept>

namespace omega::obs {

std::string_view to_string(metric_type type) {
  switch (type) {
    case metric_type::counter: return "counter";
    case metric_type::gauge: return "gauge";
    case metric_type::histogram: return "histogram";
  }
  return "unknown";
}

histogram::histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  counts_.assign(bounds_.size() + 1, 0);
}

void histogram::observe(double v) {
  std::size_t i = 0;
  while (i < bounds_.size() && v > bounds_[i]) ++i;
  ++counts_[i];
  ++count_;
  sum_ += v;
}

registry::series& registry::get_series(std::string_view name, metric_type type,
                                       label_set labels) {
  std::sort(labels.begin(), labels.end());
  auto fit = families_.find(name);
  if (fit == families_.end()) {
    fit = families_.emplace(std::string(name), family{type, {}}).first;
  } else if (fit->second.type != type) {
    throw std::logic_error("obs::registry: metric '" + std::string(name) +
                           "' re-registered as " + std::string(to_string(type)) +
                           ", was " + std::string(to_string(fit->second.type)));
  }
  for (const auto& s : fit->second.entries) {
    if (s->labels == labels) return *s;
  }
  auto s = std::make_unique<series>();
  s->labels = std::move(labels);
  fit->second.entries.push_back(std::move(s));
  return *fit->second.entries.back();
}

counter& registry::get_counter(std::string_view name, label_set labels) {
  series& s = get_series(name, metric_type::counter, std::move(labels));
  if (!s.c) s.c = std::make_unique<counter>();
  return *s.c;
}

gauge& registry::get_gauge(std::string_view name, label_set labels) {
  series& s = get_series(name, metric_type::gauge, std::move(labels));
  if (!s.g) s.g = std::make_unique<gauge>();
  return *s.g;
}

histogram& registry::get_histogram(std::string_view name, label_set labels,
                                   std::vector<double> bounds) {
  series& s = get_series(name, metric_type::histogram, std::move(labels));
  if (!s.h) s.h = std::make_unique<histogram>(std::move(bounds));
  return *s.h;
}

std::size_t registry::series_count() const {
  std::size_t n = 0;
  for (const auto& [name, fam] : families_) n += fam.entries.size();
  return n;
}

}  // namespace omega::obs
