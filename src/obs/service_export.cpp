#include "obs/service_export.hpp"

#include <string>

#include "common/time.hpp"
#include "service/service.hpp"

namespace omega::obs {

namespace {

label_set with_node(const service::leader_election_service& svc,
                    label_set extra = {}) {
  extra.emplace_back("node", std::to_string(svc.self().value()));
  return extra;
}

}  // namespace

void export_service_stats(registry& reg,
                          const service::leader_election_service& svc) {
  const service::service_stats& st = svc.stats();

  auto sent = [&](std::string_view kind) -> counter& {
    return reg.get_counter("omega_messages_sent_total",
                           with_node(svc, {{"kind", std::string(kind)}}));
  };
  sent("alive").advance_to(st.alive_sent);
  sent("accuse").advance_to(st.accuse_sent);
  sent("hello").advance_to(st.hello_sent);
  sent("hello_ack").advance_to(st.hello_ack_sent);
  sent("leave").advance_to(st.leave_sent);
  sent("rate_request").advance_to(st.rate_request_sent);

  reg.get_counter("omega_datagrams_received_total", with_node(svc))
      .advance_to(st.datagrams_received);
  reg.get_counter("omega_datagrams_dropped_total",
                  with_node(svc, {{"reason", "malformed"}}))
      .advance_to(st.malformed_received);
  reg.get_counter("omega_datagrams_dropped_total",
                  with_node(svc, {{"reason", "unknown_group"}}))
      .advance_to(st.dropped_unknown_group);

  for (const auto& [group, hs] : st.hello_by_group) {
    label_set labels =
        with_node(svc, {{"group", std::to_string(group.value())}});
    reg.get_counter("omega_hello_emissions_total", labels)
        .advance_to(hs.hellos);
    reg.get_counter("omega_hello_destinations_total", std::move(labels))
        .advance_to(hs.destinations);
  }

  reg.get_gauge("omega_heartbeat_interval_seconds", with_node(svc))
      .set(to_seconds(svc.current_eta()));
}

}  // namespace omega::obs
