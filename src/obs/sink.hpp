// The instrumentation sink: the one handle protocol components hold.
//
// A `sink` bundles a metrics registry and a trace recorder with the
// node identity and the hierarchy's group→tier annotations, so event
// sites stay one-liners:
//
//   if (sink_) sink_->record({.kind = obs::event_kind::leader_change, ...});
//
// Components default to `sink* = nullptr`; the un-instrumented hot path
// costs a single pointer compare per site (the fig12 overhead gate in
// scripts/ci.sh keeps it honest). The sink stamps each event with the
// owning node and resolves the tier of the event's group — components
// never need to know whether they sit in a hierarchy.
//
// Causal tracing (DESIGN.md §7): with `enable_causal` on, the sink keeps a
// *current cause* — the id of the event the running activation is working
// on behalf of. `activation` scopes bracket the stack's entry points (an
// inbound datagram carries its wire stamp in; timers open an empty root),
// and every recorded event (a) inherits the current cause and (b), when it
// is itself causally potent, becomes the new current cause. The service's
// outbound path reads `current_cause()` into the wire envelope of potent
// messages, which is how chains cross nodes. The sink also derives the
// continuous path-latency histograms (suspicion→accusation, election-round
// duration) from the event stream as it passes through.
#pragma once

#include <cstdint>
#include <map>

#include "common/causality.hpp"
#include "common/ids.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace omega::obs {

class sink {
 public:
  sink() = default;
  sink(registry* metrics, trace_recorder* trace,
       node_id self = node_id::invalid())
      : metrics_(metrics), trace_(trace), self_(self) {}

  [[nodiscard]] registry* metrics() const { return metrics_; }
  [[nodiscard]] trace_recorder* trace() const { return trace_; }
  [[nodiscard]] node_id self() const { return self_; }

  void set_self(node_id self) { self_ = self; }

  /// Hierarchy annotation: events for `group` get stamped with `tier`.
  /// The hierarchy coordinator registers its tiers before joining them.
  void set_tier(group_id group, std::int32_t tier) { tiers_[group] = tier; }
  [[nodiscard]] std::int32_t tier_of(group_id group) const {
    auto it = tiers_.find(group);
    return it == tiers_.end() ? -1 : it->second;
  }

  // ---- causal tracing ------------------------------------------------------

  /// Turns on cause propagation; `inc` is the incarnation stamped into the
  /// cause ids this sink mints (the service re-enables per incarnation).
  void enable_causal(incarnation inc) {
    causal_ = true;
    inc_ = inc;
  }
  [[nodiscard]] bool causal() const { return causal_; }

  /// The cause the running activation currently works on behalf of —
  /// what the service stamps into outbound potent datagrams. Invalid
  /// outside any activation, with causal tracing off, or when the
  /// activation is a spontaneous root (periodic timer).
  [[nodiscard]] cause_id current_cause() const { return current_; }

  /// Monotonic wall-clock source (microseconds); events get `wall_us`
  /// stamped when set. Real-time runtimes install
  /// `runtime::monotonic_wall_us`; sim runs leave it null.
  using wall_clock_fn = std::int64_t (*)();
  void set_wall_clock(wall_clock_fn fn) { wall_ = fn; }

  /// RAII activation scope bracketing one unit of protocol work. Two
  /// flavours:
  ///   * datagram scope — `activation(sink, stamp)`: handling an inbound
  ///     datagram, attributed to the (possibly invalid) wire stamp.
  ///   * root scope — `activation(sink)`: a timer / periodic entry point.
  ///     Only takes effect when no scope is active, so an FD transition
  ///     fired from within datagram handling keeps the inbound cause while
  ///     the same transition fired from its own timeout starts a root.
  /// Both restore the previous cause on destruction; both are no-ops on a
  /// null sink or with causal tracing off.
  class activation {
   public:
    activation(sink* s, cause_id inbound) {
      if (s == nullptr || !s->causal_) return;
      sink_ = s;
      saved_ = s->current_;
      s->current_ = inbound;
      ++s->depth_;
    }
    explicit activation(sink* s) {
      if (s == nullptr || !s->causal_ || s->depth_ != 0) return;
      sink_ = s;
      saved_ = s->current_;
      s->current_ = cause_id{};
      ++s->depth_;
    }
    ~activation() {
      if (sink_ == nullptr) return;
      sink_->current_ = saved_;
      --sink_->depth_;
    }
    activation(const activation&) = delete;
    activation& operator=(const activation&) = delete;

   private:
    sink* sink_ = nullptr;
    cause_id saved_{};
  };

  /// Stamps node (if unset), tier (if unset and annotated), wall clock and
  /// causal provenance, derives the path-latency histograms, then hands
  /// the event to the recorder. No-op without a recorder.
  void record(trace_event ev);

 private:
  /// Kinds that, once recorded, become the cause of whatever the stack
  /// does next (still within the current activation): detection evidence,
  /// election moves and membership churn — the edges a failover DAG is
  /// made of. Retunes and drop accounting stay causally inert.
  [[nodiscard]] static bool potent(event_kind kind) {
    switch (kind) {
      case event_kind::retune:
      case event_kind::unknown_group_drop:
      case event_kind::unknown_peer_drop:
        return false;
      default:
        return true;
    }
  }

  void observe_path_latencies(const trace_event& ev);

  registry* metrics_ = nullptr;
  trace_recorder* trace_ = nullptr;
  node_id self_ = node_id::invalid();
  std::map<group_id, std::int32_t> tiers_;

  bool causal_ = false;
  incarnation inc_ = 0;
  cause_id current_{};
  /// Live activation scopes; chaining only happens inside one, so events
  /// recorded outside any entry point (harness bookkeeping) never leak a
  /// stale cause into the next datagram.
  int depth_ = 0;
  wall_clock_fn wall_ = nullptr;

  /// Path-latency state, derived from the event stream (values are the
  /// events' own `at` stamps, so sim and real runs measure identically).
  std::map<node_id, time_point> pending_suspicion_;
  std::map<group_id, time_point> open_round_;
};

}  // namespace omega::obs
