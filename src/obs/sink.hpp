// The instrumentation sink: the one handle protocol components hold.
//
// A `sink` bundles a metrics registry and a trace recorder with the
// node identity and the hierarchy's group→tier annotations, so event
// sites stay one-liners:
//
//   if (sink_) sink_->record({.kind = obs::event_kind::leader_change, ...});
//
// Components default to `sink* = nullptr`; the un-instrumented hot path
// costs a single pointer compare per site (the fig12 overhead gate in
// scripts/ci.sh keeps it honest). The sink stamps each event with the
// owning node and resolves the tier of the event's group — components
// never need to know whether they sit in a hierarchy.
#pragma once

#include <map>

#include "common/ids.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace omega::obs {

class sink {
 public:
  sink() = default;
  sink(registry* metrics, trace_recorder* trace,
       node_id self = node_id::invalid())
      : metrics_(metrics), trace_(trace), self_(self) {}

  [[nodiscard]] registry* metrics() const { return metrics_; }
  [[nodiscard]] trace_recorder* trace() const { return trace_; }
  [[nodiscard]] node_id self() const { return self_; }

  void set_self(node_id self) { self_ = self; }

  /// Hierarchy annotation: events for `group` get stamped with `tier`.
  /// The hierarchy coordinator registers its tiers before joining them.
  void set_tier(group_id group, std::int32_t tier) { tiers_[group] = tier; }
  [[nodiscard]] std::int32_t tier_of(group_id group) const {
    auto it = tiers_.find(group);
    return it == tiers_.end() ? -1 : it->second;
  }

  /// Stamps node (if unset) and tier (if unset and annotated), then hands
  /// the event to the recorder. No-op without a recorder.
  void record(trace_event ev) {
    if (!trace_) return;
    if (!ev.node.valid()) ev.node = self_;
    if (ev.tier < 0) ev.tier = tier_of(ev.group);
    trace_->record(ev);
  }

 private:
  registry* metrics_ = nullptr;
  trace_recorder* trace_ = nullptr;
  node_id self_ = node_id::invalid();
  std::map<group_id, std::int32_t> tiers_;
};

}  // namespace omega::obs
