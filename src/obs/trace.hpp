// Structured event tracing of the observability plane (DESIGN.md §7).
//
// Every interesting state transition of the protocol stack — leader
// changes, FD suspicions, accusations, candidacy flips, membership churn,
// hierarchy promotions, retune adoptions — is recorded as one typed
// `trace_event` stamped with sim-or-real time, the recording node, the
// group and (when the hierarchy annotated it) the tier. Recorders are
// pluggable:
//
//   * `null_recorder` / no recorder at all — the default. Instrumented hot
//     paths guard on a single pointer, so a deployment that never attaches
//     observability pays one predictable branch per event site.
//   * `ring_recorder` — a bounded ring buffer. Old events are overwritten,
//     never reallocated: tracing a 500-node simulated cluster costs a fixed
//     few tens of KB per node no matter how long the run. Each event gets a
//     per-recorder sequence number, so wraparound never loses ordering and
//     the dropped-event count is exact.
//
// The failover-forensics pass (obs/forensics.hpp) replays the merged
// multi-node event stream around a leadership outage; obs/exposition.hpp
// dumps rings as JSONL for offline tooling.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/causality.hpp"
#include "common/ids.hpp"
#include "common/time.hpp"

namespace omega::obs {

/// Event taxonomy. `subject` / `peer` / `value` semantics per kind are
/// documented inline; unset id fields stay invalid().
enum class event_kind : std::uint8_t {
  leader_change,        // subject = new leader (invalid = leaderless)
  suspicion_raised,     // peer = suspected node, value = s since its last HB
  suspicion_cleared,    // peer = re-trusted node
  accusation_sent,      // subject = accused pid, peer = accused node
  accusation_received,  // subject = accused (local) pid, peer = accuser node
  candidacy_flip,       // subject = local pid, value = 1 candidate / 0 not
  competition_enter,    // omega_l: subject starts competing (value = phase)
  competition_withdraw, // omega_l: subject stops competing (value = phase)
  member_join,          // subject joined group (peer = hosting node)
  member_leave,         // subject left group voluntarily
  member_evicted,       // subject evicted after silence
  promotion,            // hierarchy: subject promoted into this tier's race
  demotion,             // hierarchy: subject withdrew from this tier's race
  retune,               // adaptive: new operating point (value = eta seconds;
                        // peer set = per-link refinement, unset = group default)
  unknown_group_drop,   // datagram for an unknown/stale group (peer = sender)
  unknown_peer_drop,    // datagram from an address outside the roster
                        // (transport-level; value = datagram bytes)
};

[[nodiscard]] std::string_view to_string(event_kind kind);

struct trace_event {
  event_kind kind{};
  time_point at{};
  /// The node whose recorder captured the event (stamped by the sink).
  node_id node = node_id::invalid();
  group_id group = group_id::invalid();
  /// Hierarchy tier of `group`, -1 when unannotated / not hierarchical.
  std::int32_t tier = -1;
  process_id subject = process_id::invalid();
  node_id peer = node_id::invalid();
  double value = 0.0;
  /// Per-recorder sequence number (assigned by the recorder; total order
  /// of one node's events even across ring wraparound).
  std::uint64_t seq = 0;
  /// Causal provenance (sink-stamped when causal tracing is enabled): the
  /// local or remote event that provoked this one. Invalid for roots —
  /// spontaneous activity like periodic timers — and whenever causal
  /// tracing is off, in which case the JSONL exposition omits the field
  /// entirely (the golden-trace guard depends on that).
  cause_id cause{};
  /// Monotonic wall-clock stamp in microseconds, when a real-time source
  /// is active (sink::set_wall_clock); -1 = no wall source. Raw
  /// CLOCK_MONOTONIC, comparable across engines/processes on one host —
  /// the cross-node DAG edges sanity-check against it.
  std::int64_t wall_us = -1;
};

class trace_recorder {
 public:
  virtual ~trace_recorder() = default;
  /// Records the event and returns the sequence number it was assigned —
  /// the number a `cause_id` naming this event must carry.
  virtual std::uint64_t record(const trace_event& ev) = 0;
};

/// Swallows everything; for explicitly disabling tracing where a recorder
/// reference is required.
class null_recorder final : public trace_recorder {
 public:
  std::uint64_t record(const trace_event&) override { return 0; }
};

/// Bounded ring buffer of the most recent `capacity` events.
class ring_recorder final : public trace_recorder {
 public:
  explicit ring_recorder(std::size_t capacity);

  std::uint64_t record(const trace_event& ev) override;

  /// Retained events, oldest to newest (seq ascending).
  [[nodiscard]] std::vector<trace_event> events() const;
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  /// Events ever recorded (sequence numbers keep counting across clear()).
  [[nodiscard]] std::uint64_t recorded() const { return next_seq_; }
  /// Events overwritten by wraparound.
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  void clear();

 private:
  std::size_t capacity_;
  std::vector<trace_event> ring_;
  /// Slot the next wraparound write lands in (= the oldest retained event
  /// once the ring has filled).
  std::size_t write_pos_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace omega::obs
