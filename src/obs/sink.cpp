#include "obs/sink.hpp"

namespace omega::obs {
namespace {

/// Sub-millisecond to multi-second: suspicion→accusation is near-instant
/// on the accusation-time ranking path, election rounds span QoS detection
/// windows. One shared bound set keeps the families re-parse friendly.
constexpr double kPathBounds[] = {0.0005, 0.002, 0.01, 0.05,
                                  0.25,   1.0,   5.0};

}  // namespace

void sink::record(trace_event ev) {
  if (trace_ == nullptr) return;
  if (!ev.node.valid()) ev.node = self_;
  if (ev.tier < 0 && ev.group.valid()) ev.tier = tier_of(ev.group);
  if (wall_ != nullptr) ev.wall_us = wall_();
  if (causal_) {
    if (!ev.cause.valid()) ev.cause = current_;
    const std::uint64_t seq = trace_->record(ev);
    // Inside an activation, a potent event becomes the cause of whatever
    // the rest of the stack does — including the outbound stamp the
    // service reads via current_cause(). Outside any activation the chain
    // is left alone so harness-side bookkeeping can't pollute it.
    if (depth_ > 0 && potent(ev.kind)) {
      current_ = cause_id{ev.node, inc_, seq};
    }
  } else {
    trace_->record(ev);
  }
  if (metrics_ != nullptr) observe_path_latencies(ev);
}

void sink::observe_path_latencies(const trace_event& ev) {
  switch (ev.kind) {
    case event_kind::suspicion_raised:
      if (ev.peer.valid()) pending_suspicion_[ev.peer] = ev.at;
      break;
    case event_kind::suspicion_cleared:
      if (ev.peer.valid()) pending_suspicion_.erase(ev.peer);
      break;
    case event_kind::accusation_sent: {
      auto it = pending_suspicion_.find(ev.peer);
      if (it == pending_suspicion_.end()) break;
      metrics_
          ->get_histogram("omega_suspicion_to_accusation_seconds",
                          {{"node", std::to_string(ev.node.value())}},
                          std::vector<double>(std::begin(kPathBounds),
                                              std::end(kPathBounds)))
          .observe(to_seconds(ev.at - it->second));
      pending_suspicion_.erase(it);
      break;
    }
    // A round opens at the first sign of local engagement in a group's
    // election and closes at the next leader_change for that group. The
    // paper's stability argument is precisely that these stay short and
    // rare; the histogram makes the claim continuously observable.
    case event_kind::competition_enter:
    case event_kind::promotion:
      if (ev.group.valid()) open_round_.try_emplace(ev.group, ev.at);
      break;
    case event_kind::candidacy_flip:
      if (ev.group.valid() && ev.value > 0.5)
        open_round_.try_emplace(ev.group, ev.at);
      break;
    case event_kind::leader_change: {
      if (!ev.group.valid()) break;
      auto it = open_round_.find(ev.group);
      if (it == open_round_.end()) break;
      metrics_
          ->get_histogram("omega_election_round_seconds",
                          {{"node", std::to_string(ev.node.value())},
                           {"tier", std::to_string(ev.tier)}},
                          std::vector<double>(std::begin(kPathBounds),
                                              std::end(kPathBounds)))
          .observe(to_seconds(ev.at - it->second));
      open_round_.erase(it);
      break;
    }
    default:
      break;
  }
}

}  // namespace omega::obs
