#include "obs/exposition.hpp"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <map>

#include "common/time.hpp"

namespace omega::obs {

namespace {

// Prometheus label-value escaping: backslash, double quote, newline.
void append_escaped(std::string& out, std::string_view v) {
  for (char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
}

void append_labels(std::string& out, const label_set& labels) {
  if (labels.empty()) return;
  out += '{';
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k;
    out += "=\"";
    append_escaped(out, v);
    out += '"';
  }
  out += '}';
}

// Labels plus one extra pair (for histogram `le`), keeping render order
// stable: the extra pair goes last, matching common exporter output.
void append_labels_with(std::string& out, const label_set& labels,
                        std::string_view key, std::string_view value) {
  out += '{';
  for (const auto& [k, v] : labels) {
    out += k;
    out += "=\"";
    append_escaped(out, v);
    out += "\",";
  }
  out += key;
  out += "=\"";
  append_escaped(out, value);
  out += "\"}";
}

void append_double(std::string& out, double v) {
  if (std::isinf(v)) {
    out += v > 0 ? "+Inf" : "-Inf";
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.15g", v);
  out += buf;
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out += buf;
}

std::string le_string(double bound) {
  std::string s;
  append_double(s, bound);
  return s;
}

void render_series(std::string& out, std::string_view name, metric_type type,
                   const registry::series& s);

}  // namespace

std::string render_prometheus(const registry& reg) {
  const registry* regs[] = {&reg};
  return render_prometheus(std::span<const registry* const>(regs));
}

std::string render_prometheus(std::span<const registry* const> regs) {
  // Union of family names across registries, in name order (map). Each
  // family remembers the first registry's type; later registries whose
  // homonymous family disagrees are dropped (instrumentation bug).
  std::map<std::string_view,
           std::pair<metric_type, std::vector<const registry::family*>>,
           std::less<>>
      merged;
  for (const registry* reg : regs) {
    if (reg == nullptr) continue;
    for (const auto& [name, fam] : reg->families()) {
      auto [it, inserted] =
          merged.try_emplace(name, fam.type, std::vector<const registry::family*>{});
      if (!inserted && it->second.first != fam.type) continue;
      it->second.second.push_back(&fam);
    }
  }
  std::string out;
  for (const auto& [name, typed] : merged) {
    out += "# TYPE ";
    out += name;
    out += ' ';
    out += to_string(typed.first);
    out += '\n';
    for (const registry::family* fam : typed.second) {
      for (const auto& s : fam->entries) render_series(out, name, typed.first, *s);
    }
  }
  return out;
}

namespace {

void render_series(std::string& out, std::string_view name, metric_type type,
                   const registry::series& s) {
  switch (type) {
    case metric_type::counter: {
      out += name;
      append_labels(out, s.labels);
      out += ' ';
      append_u64(out, s.c ? s.c->value() : 0);
      out += '\n';
      break;
    }
    case metric_type::gauge: {
      out += name;
      append_labels(out, s.labels);
      out += ' ';
      append_double(out, s.g ? s.g->value() : 0.0);
      out += '\n';
      break;
    }
    case metric_type::histogram: {
      if (!s.h) break;
      const auto& bounds = s.h->bounds();
      std::uint64_t cumulative = 0;
      for (std::size_t i = 0; i < bounds.size(); ++i) {
        cumulative += s.h->bucket_count(i);
        out += name;
        out += "_bucket";
        append_labels_with(out, s.labels, "le", le_string(bounds[i]));
        out += ' ';
        append_u64(out, cumulative);
        out += '\n';
      }
      cumulative += s.h->bucket_count(bounds.size());
      out += name;
      out += "_bucket";
      append_labels_with(out, s.labels, "le", "+Inf");
      out += ' ';
      append_u64(out, cumulative);
      out += '\n';
      out += name;
      out += "_sum";
      append_labels(out, s.labels);
      out += ' ';
      append_double(out, s.h->sum());
      out += '\n';
      out += name;
      out += "_count";
      append_labels(out, s.labels);
      out += ' ';
      append_u64(out, s.h->count());
      out += '\n';
      break;
    }
  }
}

}  // namespace

namespace {

// --- minimal parser of the dialect render_prometheus emits ---------------

bool parse_line(std::string_view line, parsed_sample& out) {
  std::size_t i = 0;
  const std::size_t n = line.size();
  auto name_char = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
           (c >= '0' && c <= '9') || c == '_' || c == ':';
  };
  std::size_t name_end = i;
  while (name_end < n && name_char(line[name_end])) ++name_end;
  if (name_end == i) return false;
  out.name.assign(line.substr(i, name_end - i));
  i = name_end;
  out.labels.clear();
  if (i < n && line[i] == '{') {
    ++i;
    while (i < n && line[i] != '}') {
      std::size_t key_end = i;
      while (key_end < n && name_char(line[key_end])) ++key_end;
      if (key_end == i || key_end >= n || line[key_end] != '=') return false;
      std::string key(line.substr(i, key_end - i));
      i = key_end + 1;
      if (i >= n || line[i] != '"') return false;
      ++i;
      std::string value;
      while (i < n && line[i] != '"') {
        if (line[i] == '\\') {
          if (i + 1 >= n) return false;
          char next = line[i + 1];
          if (next == '\\') value += '\\';
          else if (next == '"') value += '"';
          else if (next == 'n') value += '\n';
          else return false;
          i += 2;
        } else {
          value += line[i++];
        }
      }
      if (i >= n) return false;  // unterminated quote
      ++i;                       // closing quote
      out.labels.emplace_back(std::move(key), std::move(value));
      if (i < n && line[i] == ',') ++i;
    }
    if (i >= n || line[i] != '}') return false;
    ++i;
  }
  if (i >= n || line[i] != ' ') return false;
  ++i;
  std::string_view value_sv = line.substr(i);
  if (value_sv.empty()) return false;
  if (value_sv == "+Inf") {
    out.value = std::numeric_limits<double>::infinity();
    return true;
  }
  if (value_sv == "-Inf") {
    out.value = -std::numeric_limits<double>::infinity();
    return true;
  }
  std::string value_str(value_sv);
  char* end = nullptr;
  out.value = std::strtod(value_str.c_str(), &end);
  return end == value_str.c_str() + value_str.size();
}

}  // namespace

std::optional<std::vector<parsed_sample>> parse_prometheus(
    std::string_view text) {
  std::vector<parsed_sample> samples;
  while (!text.empty()) {
    std::size_t eol = text.find('\n');
    std::string_view line =
        eol == std::string_view::npos ? text : text.substr(0, eol);
    text = eol == std::string_view::npos ? std::string_view{}
                                         : text.substr(eol + 1);
    if (line.empty()) continue;
    if (line[0] == '#') continue;  // TYPE / HELP / comment lines
    parsed_sample s;
    if (!parse_line(line, s)) return std::nullopt;
    samples.push_back(std::move(s));
  }
  return samples;
}

namespace {

void append_json_id(std::string& out, bool valid, std::uint64_t v) {
  if (!valid) {
    out += "null";
  } else {
    append_u64(out, v);
  }
}

}  // namespace

std::string render_jsonl(std::span<const trace_event> events) {
  std::string out;
  for (const trace_event& ev : events) {
    out += "{\"seq\":";
    append_u64(out, ev.seq);
    out += ",\"t\":";
    append_double(out, to_seconds(ev.at));
    out += ",\"kind\":\"";
    out += to_string(ev.kind);
    out += "\",\"node\":";
    append_json_id(out, ev.node.valid(), ev.node.value());
    out += ",\"group\":";
    append_json_id(out, ev.group.valid(), ev.group.value());
    out += ",\"tier\":";
    if (ev.tier < 0) {
      out += "null";
    } else {
      append_u64(out, static_cast<std::uint64_t>(ev.tier));
    }
    out += ",\"subject\":";
    append_json_id(out, ev.subject.valid(), ev.subject.value());
    out += ",\"peer\":";
    append_json_id(out, ev.peer.valid(), ev.peer.value());
    out += ",\"value\":";
    append_double(out, ev.value);
    // Causal/wall fields are appended only when present, so runs without
    // causal stamping or a wall clock stay byte-identical to the pre-causal
    // format (the golden-trace guard pins that).
    if (ev.cause.valid()) {
      out += ",\"cause\":{\"node\":";
      append_u64(out, ev.cause.origin.value());
      out += ",\"inc\":";
      append_u64(out, ev.cause.inc);
      out += ",\"seq\":";
      append_u64(out, ev.cause.seq);
      out += '}';
    }
    if (ev.wall_us >= 0) {
      out += ",\"wall_us\":";
      append_u64(out, static_cast<std::uint64_t>(ev.wall_us));
    }
    out += "}\n";
  }
  return out;
}

}  // namespace omega::obs
