// Causal reconstruction of a failover from per-node trace rings alone.
//
// The sink's causal plane (obs/sink.hpp) gives every trace event a
// `cause_id` naming the local or remote event that provoked it; this module
// stitches the concatenated rings of any number of nodes into one DAG by
// resolving those ids — (origin node, seq) is a coordination-free unique
// key, so the reconstruction needs **no global clock**. That is the whole
// point: the same code attributes a failover on the simulator's virtual
// timeline and on a real-UDP multi-process run where each engine has its
// own epoch and only a monotonic wall clock (if that) is shared.
//
//   * `build` indexes events and resolves cause pointers. An id whose
//     target is absent (overwritten by ring wraparound) is counted as
//     *dangling*, not silently treated as a root.
//   * `linkage` answers the forensics question "how much of the failover
//     is explained": the fraction of causally potent events in the outage
//     window that are — or transitively descend from — root-cause evidence
//     about the victim (a suspicion of its node, an accusation naming it).
//   * `attribute_outage` ports obs/forensics.hpp to the DAG: identical
//     phase rules (shared predicates), but the engagement boundary prefers
//     events the DAG actually links to the victim evidence, and the whole
//     attribution can run on the wall-clock timeline (`timeline::wall`)
//     where sim time is meaningless.
//   * `wall_skew_violations` sanity-checks the dual timestamps (satellite:
//     DAG edges vs. wall-clock skew): causality can never run backwards on
//     a shared monotonic clock, so a child with an earlier wall stamp than
//     its parent exposes clock skew (or a bogus stamp) immediately.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/ids.hpp"
#include "common/time.hpp"
#include "obs/forensics.hpp"
#include "obs/trace.hpp"

namespace omega::obs {

class causal_graph {
 public:
  /// Which timestamp orders and windows events: the shared sim clock
  /// (`ev.at`) or the monotonic wall clock (`ev.wall_us`; events without a
  /// wall stamp are excluded from windowed queries on this timeline).
  enum class timeline : std::uint8_t { sim, wall };

  /// Builds the DAG from the concatenation of per-node rings, any order.
  [[nodiscard]] static causal_graph build(std::span<const trace_event> events);

  struct linkage_report {
    /// Causally potent events inside the window (retunes and drop
    /// accounting are causally inert bookkeeping and not counted).
    std::size_t considered = 0;
    /// Of those: events anchored — directly or transitively — at
    /// root-cause evidence about the victim.
    std::size_t linked = 0;
    /// Root-cause evidence events found in the window.
    std::size_t evidence_roots = 0;
    /// Events whose cause id did not resolve (ring wraparound).
    std::size_t dangling = 0;

    [[nodiscard]] double fraction() const {
      return considered > 0
                 ? static_cast<double>(linked) / static_cast<double>(considered)
                 : 0.0;
    }
  };

  /// How much of the outage window (start, end] the DAG explains (the
  /// harness acceptance gate requires >= 95% of events linked).
  [[nodiscard]] linkage_report linkage(node_id victim_node,
                                       process_id victim_pid, time_point start,
                                       time_point end,
                                       timeline tl = timeline::sim) const;

  /// DAG port of obs/forensics.hpp attribute_outage: the same three-phase
  /// tiling with the same evidence predicates, except the engagement
  /// boundary is the earliest engagement *linked to the victim evidence*
  /// (falling back to any engagement when none is linked — exactly the
  /// window heuristic). On `timeline::wall`, start/end and the budget's
  /// time points live on the wall clock (time_point{usec(wall_us)}).
  [[nodiscard]] outage_budget attribute_outage(
      node_id victim_node, process_id victim_pid, time_point start,
      time_point end, std::optional<process_id> resolved_leader = std::nullopt,
      timeline tl = timeline::sim) const;

  /// Resolved parent→child edges where the child's wall stamp precedes the
  /// parent's: impossible under causality on one shared monotonic clock,
  /// so nonzero means skewed clocks or corrupted stamps. Edges lacking a
  /// wall stamp on either end are skipped.
  [[nodiscard]] std::size_t wall_skew_violations() const;

  // ---- introspection -------------------------------------------------------

  [[nodiscard]] std::size_t size() const { return events_.size(); }
  [[nodiscard]] const trace_event& event(std::size_t i) const {
    return events_[i];
  }
  /// Index of the resolved cause of event `i`, or -1 (root or dangling).
  [[nodiscard]] int cause_index(std::size_t i) const { return cause_[i]; }
  /// True when event `i` carried a cause id that failed to resolve.
  [[nodiscard]] bool is_dangling(std::size_t i) const { return dangling_[i]; }

 private:
  /// Event time on the chosen timeline; nullopt = not on this timeline.
  [[nodiscard]] std::optional<time_point> at_on(const trace_event& ev,
                                                timeline tl) const;
  /// Memoized "is or descends from victim evidence" over the whole graph.
  [[nodiscard]] std::vector<char> anchor_victim_evidence(
      node_id victim_node, process_id victim_pid) const;

  std::vector<trace_event> events_;
  std::vector<int> cause_;      // resolved cause index, -1 = root/dangling
  std::vector<char> dangling_;  // had a cause id that did not resolve
};

}  // namespace omega::obs
