// Minimal embedded HTTP server for live telemetry (DESIGN.md §7).
//
// Serves GET /metrics (Prometheus text exposition) and GET /trace (JSONL
// tail of the trace rings) from a loopback TCP socket, so a running
// deployment — `examples/udp_live`, the experiment harness, or anything
// else that mounts it — can be scraped while in flight. scripts/ci.sh
// scrapes a live udp_live process and re-parses the result through the
// same parser the unit tests use.
//
// Scope is deliberately tiny: HTTP/1.0-style request/response on loopback,
// GET only, one short-lived connection per request (Connection: close),
// no TLS, no keep-alive, no chunking. That is all a scrape needs, and it
// keeps the server at one accept thread with zero dependencies.
//
// Concurrency contract: the registry and trace rings are owned by their
// event loops and are NOT safe to read from the accept thread. Content
// therefore flows through one of two thread-safe paths:
//   * `publish(path, body, type)` — the owning loop renders at its own
//     cadence and hands the endpoint an immutable snapshot (mutex-guarded
//     swap). GETs serve the latest snapshot. This is the default path.
//   * `set_handler(fn)` — on-demand rendering; the callback runs on the
//     accept thread and must do its own synchronization (e.g. post a
//     render closure to the owning loop and wait). Returning nullopt falls
//     back to the published snapshots.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>

namespace omega::obs {

class http_endpoint {
 public:
  /// On-demand content: path ("/metrics") → body, or nullopt to fall back
  /// to published snapshots. Runs on the accept thread.
  using handler =
      std::function<std::optional<std::string>(std::string_view path)>;

  http_endpoint() = default;
  ~http_endpoint();

  http_endpoint(const http_endpoint&) = delete;
  http_endpoint& operator=(const http_endpoint&) = delete;

  /// Binds 127.0.0.1:`port` (0 = kernel-assigned, see `port()`) and starts
  /// the accept thread. Returns false if the socket could not be set up.
  bool start(std::uint16_t port);
  /// Stops the accept thread and closes the socket. Idempotent; the
  /// destructor calls it.
  void stop();
  [[nodiscard]] bool running() const { return listen_fd_ >= 0; }
  /// The bound port (after start); 0 if not running.
  [[nodiscard]] std::uint16_t port() const { return port_; }

  void set_handler(handler h);

  /// Publishes an immutable snapshot for `path`. Thread-safe; replaces any
  /// previous snapshot atomically.
  void publish(std::string path, std::string body, std::string content_type);

  /// Snapshot content types used by the standard mounts.
  static constexpr std::string_view metrics_content_type =
      "text/plain; version=0.0.4; charset=utf-8";
  static constexpr std::string_view trace_content_type =
      "application/x-ndjson";

 private:
  void serve_loop();
  void handle_connection(int fd);

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread thread_;

  std::mutex mu_;
  handler handler_;                        // guarded by mu_
  struct snapshot {
    std::string body;
    std::string content_type;
  };
  std::map<std::string, snapshot, std::less<>> snapshots_;  // guarded by mu_
};

}  // namespace omega::obs
