#include "obs/http_endpoint.hpp"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace omega::obs {

http_endpoint::~http_endpoint() { stop(); }

bool http_endpoint::start(std::uint16_t port) {
  if (listen_fd_ >= 0) return false;  // already running
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 8) != 0) {
    ::close(fd);
    return false;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd);
    return false;
  }
  port_ = ntohs(addr.sin_port);
  listen_fd_ = fd;
  thread_ = std::thread([this] { serve_loop(); });
  return true;
}

void http_endpoint::stop() {
  if (listen_fd_ < 0) return;
  // shutdown() wakes the blocked accept(); close() alone does not reliably
  // on all platforms.
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  listen_fd_ = -1;
  if (thread_.joinable()) thread_.join();
  port_ = 0;
}

void http_endpoint::set_handler(handler h) {
  std::lock_guard lock(mu_);
  handler_ = std::move(h);
}

void http_endpoint::publish(std::string path, std::string body,
                            std::string content_type) {
  std::lock_guard lock(mu_);
  snapshots_[std::move(path)] = {std::move(body), std::move(content_type)};
}

void http_endpoint::serve_loop() {
  const int listen_fd = listen_fd_;
  while (true) {
    const int conn = ::accept(listen_fd, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR) continue;
      return;  // listen socket closed by stop()
    }
    handle_connection(conn);
    ::close(conn);
  }
}

namespace {

void send_all(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n <= 0) return;
    data.remove_prefix(static_cast<std::size_t>(n));
  }
}

void send_response(int fd, std::string_view status, std::string_view type,
                   std::string_view body) {
  std::string head;
  head.reserve(128);
  head += "HTTP/1.0 ";
  head += status;
  head += "\r\nContent-Type: ";
  head += type;
  head += "\r\nContent-Length: ";
  head += std::to_string(body.size());
  head += "\r\nConnection: close\r\n\r\n";
  send_all(fd, head);
  send_all(fd, body);
}

}  // namespace

void http_endpoint::handle_connection(int fd) {
  // Read until the end of the request head (or 4 KiB — scrapes send tiny
  // requests; anything bigger is not our client).
  char buf[4096];
  std::size_t used = 0;
  while (used < sizeof(buf)) {
    const ssize_t n = ::recv(fd, buf + used, sizeof(buf) - used, 0);
    if (n <= 0) return;
    used += static_cast<std::size_t>(n);
    if (std::string_view(buf, used).find("\r\n\r\n") != std::string_view::npos)
      break;
  }
  const std::string_view req(buf, used);

  // Request line: METHOD SP PATH SP VERSION.
  const std::size_t m_end = req.find(' ');
  if (m_end == std::string_view::npos) {
    send_response(fd, "400 Bad Request", "text/plain", "bad request\n");
    return;
  }
  if (req.substr(0, m_end) != "GET") {
    send_response(fd, "405 Method Not Allowed", "text/plain",
                  "GET only\n");
    return;
  }
  const std::size_t p_end = req.find(' ', m_end + 1);
  if (p_end == std::string_view::npos) {
    send_response(fd, "400 Bad Request", "text/plain", "bad request\n");
    return;
  }
  std::string_view path = req.substr(m_end + 1, p_end - m_end - 1);
  if (const std::size_t q = path.find('?'); q != std::string_view::npos) {
    path = path.substr(0, q);  // scrape params are ignored
  }

  {
    std::lock_guard lock(mu_);
    if (handler_) {
      // The callback may render on another thread and block; holding mu_
      // keeps handler replacement safe and serializes requests, which is
      // fine at scrape rates.
      if (auto body = handler_(path)) {
        const std::string_view type = path == "/trace"
                                          ? trace_content_type
                                          : metrics_content_type;
        send_response(fd, "200 OK", type, *body);
        return;
      }
    }
    auto it = snapshots_.find(path);
    if (it != snapshots_.end()) {
      send_response(fd, "200 OK", it->second.content_type, it->second.body);
      return;
    }
  }
  send_response(fd, "404 Not Found", "text/plain", "not found\n");
}

}  // namespace omega::obs
