#include "obs/runtime_export.hpp"

#include <string>

#include "runtime/loop_transport.hpp"
#include "runtime/udp_transport.hpp"

namespace omega::obs {

namespace {

label_set with_node(node_id node, label_set extra = {}) {
  extra.emplace_back("node", std::to_string(node.value()));
  return extra;
}

}  // namespace

void export_transport_stats(registry& reg, node_id node,
                            const runtime::transport_net_stats& stats,
                            std::uint64_t queue_depth) {
  auto send_err = [&](std::string_view reason) -> counter& {
    return reg.get_counter("runtime_send_errors_total",
                           with_node(node, {{"reason", std::string(reason)}}));
  };
  send_err("eagain").advance_to(stats.send_err_eagain);
  send_err("enobufs").advance_to(stats.send_err_enobufs);
  send_err("other").advance_to(stats.send_err_other);

  reg.get_counter("runtime_rx_dropped_total",
                  with_node(node, {{"reason", "unknown_peer"}}))
      .advance_to(stats.rx_unknown_peer);
  reg.get_counter("runtime_rx_dropped_total",
                  with_node(node, {{"reason", "truncated"}}))
      .advance_to(stats.rx_truncated);

  reg.get_counter("runtime_send_queue_drops_total", with_node(node))
      .advance_to(stats.send_queue_drops);
  reg.get_gauge("runtime_send_queue_depth", with_node(node))
      .set(static_cast<double>(queue_depth));
  reg.get_gauge("runtime_send_queue_high_watermark", with_node(node))
      .set(static_cast<double>(stats.send_queue_hwm));

  auto dgrams = [&](std::string_view dir) -> counter& {
    return reg.get_counter("runtime_transport_datagrams_total",
                           with_node(node, {{"dir", std::string(dir)}}));
  };
  dgrams("tx").advance_to(stats.datagrams_sent);
  dgrams("rx").advance_to(stats.datagrams_received);
}

void export_transport_stats(registry& reg,
                            const runtime::loop_udp_transport& transport) {
  export_transport_stats(reg, transport.local_node(), transport.stats(),
                         transport.queue_depth());
}

void export_transport_stats(registry& reg,
                            const runtime::udp_transport& transport) {
  export_transport_stats(reg, transport.local_node(), transport.stats());
}

void export_loop_stats(registry& reg, std::uint64_t loop_index,
                       const runtime::loop_stats& stats) {
  const label_set loop_label = {{"loop", std::to_string(loop_index)}};
  auto syscalls = [&](std::string_view op) -> counter& {
    label_set labels = loop_label;
    labels.emplace_back("op", std::string(op));
    return reg.get_counter("runtime_syscalls_total", std::move(labels));
  };
  syscalls("epoll_wait").advance_to(stats.epoll_waits);
  syscalls("eventfd_read").advance_to(stats.eventfd_reads);
  syscalls("sendmmsg").advance_to(stats.sendmmsg_calls);
  syscalls("sendto").advance_to(stats.sendto_calls);
  syscalls("recvmmsg").advance_to(stats.recvmmsg_calls);
  syscalls("recvfrom").advance_to(stats.recvfrom_calls);

  auto dgrams = [&](std::string_view dir) -> counter& {
    label_set labels = loop_label;
    labels.emplace_back("dir", std::string(dir));
    return reg.get_counter("runtime_loop_datagrams_total", std::move(labels));
  };
  dgrams("tx").advance_to(stats.datagrams_sent);
  dgrams("rx").advance_to(stats.datagrams_received);

  reg.get_counter("runtime_loop_iterations_total", loop_label)
      .advance_to(stats.iterations);
}

}  // namespace omega::obs
