// Scoped-timer profiler: real (host) execution time of simulator work,
// bucketed per label into the metrics registry.
//
// The discrete-event kernel's virtual clock says nothing about how much
// host CPU each event costs; this is the continuous answer. A `scope`
// stamps std::chrono::steady_clock on entry and observes the elapsed
// seconds into `omega_sim_handler_seconds{kind=<label>}` on exit. The
// simulated network uses it around datagram delivery with the label from
// `proto::peek_kind`, so a scrape shows where host time goes per message
// kind (ALIVE floods vs. rare ACCUSE handling) while a run is in flight.
//
// Deliberately *outside* the virtual timeline: observing host time never
// touches the sim clock or event order, so profiled runs stay bit-
// deterministic (the golden-trace guard would catch a violation). Cells
// are cached per label after the first observation; the steady-state cost
// per scope is two clock reads, one short linear label probe and one
// histogram observe.
#pragma once

#include <chrono>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace omega::obs {

class profiler {
 public:
  explicit profiler(registry* metrics) : metrics_(metrics) {}

  class scope {
   public:
    scope(profiler* p, std::string_view label) : profiler_(p), label_(label) {
      if (profiler_ != nullptr) start_ = std::chrono::steady_clock::now();
    }
    ~scope() {
      if (profiler_ == nullptr) return;
      const auto elapsed = std::chrono::steady_clock::now() - start_;
      profiler_->observe(label_,
                         std::chrono::duration<double>(elapsed).count());
    }
    scope(const scope&) = delete;
    scope& operator=(const scope&) = delete;

   private:
    profiler* profiler_;
    std::string_view label_;
    std::chrono::steady_clock::time_point start_;
  };

  void observe(std::string_view label, double seconds);

 private:
  registry* metrics_;
  /// Label → cell cache; a handful of labels (the message kinds), probed
  /// linearly. Cells are registry-owned and stable.
  std::vector<std::pair<std::string, histogram*>> cells_;
};

}  // namespace omega::obs
