// Metrics registry of the observability plane (DESIGN.md §7).
//
// Counters, gauges and fixed-bucket histograms keyed by (name, label set),
// designed for the protocol stack's single-threaded event loops:
//
//   * lock-cheap by construction — there are no locks at all. A registry is
//     owned by one event loop (one service instance, or one harness run);
//     instrumentation acquires a cell handle once (a linear name+labels
//     lookup) and afterwards every update is a plain integer/double store.
//     Cross-thread exposition renders on the owning loop (the real-time
//     runtime posts the render closure, exactly like every other API call).
//   * stable cells — get_* returns a reference that stays valid for the
//     registry's lifetime, so handles can be cached across crash/recovery
//     cycles of the instrumented component. Counters are therefore
//     monotonic across component restarts: a recovered service re-acquires
//     the same cell and keeps counting where its predecessor stopped
//     (`counter::advance_to` absorbs snapshot-style re-publishing without
//     ever moving a cell backwards).
//   * Prometheus-shaped — families carry one type, series are label sets,
//     histograms store fixed upper bounds and render cumulatively
//     (obs/exposition.hpp does the text format).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace omega::obs {

/// Sorted (key, value) pairs identifying one series within a family.
using label_set = std::vector<std::pair<std::string, std::string>>;

enum class metric_type : std::uint8_t { counter, gauge, histogram };

[[nodiscard]] std::string_view to_string(metric_type type);

/// Monotonically non-decreasing event count.
class counter {
 public:
  void inc(std::uint64_t n = 1) { value_ += n; }
  /// Raises the cell to `v` if (and only if) that does not decrease it —
  /// the snapshot-export path: a component re-publishing its internal
  /// counters can never move the exposed series backwards, even when the
  /// component itself restarted from zero.
  void advance_to(std::uint64_t v) {
    if (v > value_) value_ = v;
  }
  [[nodiscard]] std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Point-in-time measurement; may go up and down.
class gauge {
 public:
  void set(double v) { value_ = v; }
  void add(double d) { value_ += d; }
  [[nodiscard]] double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Fixed-bucket histogram: `bounds` are ascending inclusive upper bounds;
/// an implicit +Inf bucket catches the rest. Buckets are stored
/// non-cumulatively; the exposition renders the Prometheus cumulative form.
class histogram {
 public:
  explicit histogram(std::vector<double> bounds);

  void observe(double v);

  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  /// Non-cumulative count of bucket `i`; `i == bounds().size()` is +Inf.
  [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const {
    return counts_.at(i);
  }
  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;  // bounds_.size() + 1 (last = +Inf)
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
};

class registry {
 public:
  /// One (label set, cell) series. Exactly one of the cell pointers is
  /// non-null, matching the family's type.
  struct series {
    label_set labels;
    std::unique_ptr<counter> c;
    std::unique_ptr<gauge> g;
    std::unique_ptr<histogram> h;
  };
  struct family {
    metric_type type{};
    std::vector<std::unique_ptr<series>> entries;
  };

  /// Returns the cell for (name, labels), creating it on first use. Labels
  /// are normalized (sorted by key), so acquisition order never splits a
  /// series. Throws std::logic_error if `name` already exists with a
  /// different metric type — that is an instrumentation bug, not input.
  counter& get_counter(std::string_view name, label_set labels = {});
  gauge& get_gauge(std::string_view name, label_set labels = {});
  /// Histogram bounds are fixed at first acquisition; later calls with the
  /// same (name, labels) return the existing cell and ignore `bounds`.
  histogram& get_histogram(std::string_view name, label_set labels,
                           std::vector<double> bounds);

  /// Families in name order (the exposition's render order).
  [[nodiscard]] const std::map<std::string, family, std::less<>>& families()
      const {
    return families_;
  }
  [[nodiscard]] std::size_t series_count() const;

 private:
  series& get_series(std::string_view name, metric_type type,
                     label_set labels);

  std::map<std::string, family, std::less<>> families_;
};

}  // namespace omega::obs
