#include "obs/forensics.hpp"

#include <algorithm>

namespace omega::obs {

bool victim_evidence(const trace_event& ev, node_id victim_node,
                     process_id victim_pid) {
  switch (ev.kind) {
    case event_kind::suspicion_raised:
      return ev.peer == victim_node;
    case event_kind::accusation_sent:
    case event_kind::accusation_received:
      return ev.subject == victim_pid || ev.peer == victim_node;
    case event_kind::member_evicted:
      return ev.subject == victim_pid;
    default:
      return false;
  }
}

bool election_engagement(const trace_event& ev, node_id victim_node,
                         process_id victim_pid,
                         const std::optional<process_id>& resolved_leader) {
  if (ev.node == victim_node) return false;  // the corpse does not campaign
  switch (ev.kind) {
    case event_kind::promotion:
      return true;
    case event_kind::candidacy_flip:
      return ev.value > 0.5;  // flipping *into* candidacy
    case event_kind::competition_enter:
      return ev.subject != victim_pid;
    case event_kind::leader_change:
      // A survivor locally electing a live replacement engages the race;
      // electing the (stale) victim or going leaderless does not.
      if (!ev.subject.valid() || ev.subject == victim_pid) return false;
      return !resolved_leader || ev.subject == *resolved_leader;
    default:
      return false;
  }
}

outage_budget attribute_outage(std::span<const trace_event> events,
                               node_id victim_node, process_id victim_pid,
                               time_point start, time_point end,
                               std::optional<process_id> resolved_leader) {
  outage_budget b;
  b.victim = victim_node;
  b.start = start;
  b.end = end;
  if (end <= start) return b;

  // Earliest detection of the victim anywhere in the window.
  std::optional<time_point> t_detect;
  for (const trace_event& ev : events) {
    if (ev.at <= start || ev.at > end) continue;
    if (!victim_evidence(ev, victim_node, victim_pid)) continue;
    if (!t_detect || ev.at < *t_detect) t_detect = ev.at;
  }
  if (!t_detect) return b;
  b.saw_detection = true;
  b.detection_s = to_seconds(*t_detect - start);

  // Earliest election engagement by a survivor at or after detection.
  std::optional<time_point> t_engage;
  for (const trace_event& ev : events) {
    if (ev.at < *t_detect || ev.at > end) continue;
    if (!election_engagement(ev, victim_node, victim_pid, resolved_leader))
      continue;
    if (!t_engage || ev.at < *t_engage) t_engage = ev.at;
  }
  if (!t_engage) return b;
  b.saw_engagement = true;
  b.dissemination_s = to_seconds(*t_engage - *t_detect);
  b.election_s = to_seconds(end - *t_engage);
  return b;
}

}  // namespace omega::obs
