// Bridges the service's internal `service_stats` snapshot into the metrics
// registry, superseding ad-hoc counter dumps: call `export_service_stats`
// whenever an up-to-date view is wanted (before a scrape, at end of a sim
// window). Counters are published with `counter::advance_to`, so a registry
// that outlives the service instance — the harness owns one per node across
// crash/recovery cycles — exposes monotone series even though each
// recovered instance restarts its internal counts from zero.
#pragma once

#include "obs/metrics.hpp"

namespace omega::service {
class leader_election_service;
}

namespace omega::obs {

void export_service_stats(registry& reg,
                          const service::leader_election_service& svc);

}  // namespace omega::obs
