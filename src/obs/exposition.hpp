// Exposition formats of the observability plane (DESIGN.md §7).
//
//   * `render_prometheus` — the Prometheus text format, version 0.0.4: one
//     `# TYPE` line per family, escaped label values, histograms in the
//     cumulative `_bucket{le=...}` / `_sum` / `_count` shape scrapers
//     expect. `examples/udp_live.cpp` serves this for real deployments;
//     the harness dumps it at the end of sim runs.
//   * `parse_prometheus` — a minimal re-parser of the same dialect, used by
//     the CI exposition smoke (render → re-parse → compare) and the tests.
//     It understands exactly what `render_prometheus` emits; it is not a
//     general scraper.
//   * `render_jsonl` — one JSON object per trace event, for offline
//     forensics tooling (jq, pandas, ...).
#pragma once

#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace omega::obs {

[[nodiscard]] std::string render_prometheus(const registry& reg);

/// Merged exposition of several registries — one per node when a single
/// process hosts many instances (the sim harness, `udp_live`). Families
/// sharing a name render once, with every registry's series under one
/// `# TYPE` header. Instrumentation must disambiguate with labels
/// (`node`, ...); null registry pointers are skipped, and a family whose
/// type conflicts with an earlier registry's is dropped rather than
/// rendered under the wrong header.
[[nodiscard]] std::string render_prometheus(
    std::span<const registry* const> regs);

/// One sample line of the text format, after unescaping.
struct parsed_sample {
  std::string name;
  label_set labels;
  double value = 0.0;
};

/// Parses the output of `render_prometheus`. Returns nullopt on any
/// malformed line (the CI smoke treats that as a render bug).
[[nodiscard]] std::optional<std::vector<parsed_sample>> parse_prometheus(
    std::string_view text);

/// One JSON object per event, newline-terminated. Times in fractional
/// seconds on the virtual timeline; invalid ids rendered as null.
[[nodiscard]] std::string render_jsonl(std::span<const trace_event> events);

}  // namespace omega::obs
