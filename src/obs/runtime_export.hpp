// Bridges the real-socket runtime's I/O counters into the metrics
// registry, the same way service_export.hpp publishes `service_stats`:
// counters go through `counter::advance_to` (snapshot-style, monotone even
// across transport rebuilds), gauges are set to the instantaneous value.
//
// Families:
//   runtime_send_errors_total{node,reason}   reason = eagain|enobufs|other
//   runtime_rx_dropped_total{node,reason}    reason = unknown_peer|truncated
//   runtime_send_queue_drops_total{node}     ring overflow under backpressure
//   runtime_send_queue_depth{node}           entries waiting right now
//   runtime_send_queue_high_watermark{node}  deepest the ring has been
//   runtime_transport_datagrams_total{node,dir}
//   runtime_syscalls_total{loop,op}          op = epoll_wait|sendmmsg|...
//   runtime_loop_datagrams_total{loop,dir}
//   runtime_loop_iterations_total{loop}
#pragma once

#include <cstdint>

#include "obs/metrics.hpp"
#include "runtime/endpoint.hpp"
#include "runtime/event_loop.hpp"

namespace omega::runtime {
class loop_udp_transport;
class udp_transport;
}  // namespace omega::runtime

namespace omega::obs {

/// Publishes one transport's counters under its node label. Call on the
/// thread that owns `reg` (for loop transports that is the loop thread).
void export_transport_stats(registry& reg, node_id node,
                            const runtime::transport_net_stats& stats,
                            std::uint64_t queue_depth = 0);

/// Convenience overloads reading the transport's own counters.
void export_transport_stats(registry& reg,
                            const runtime::loop_udp_transport& transport);
void export_transport_stats(registry& reg,
                            const runtime::udp_transport& transport);

/// Publishes one loop's syscall/datagram counters under a loop label.
/// `stats` should be a coherent snapshot (event_loop::stats_snapshot).
void export_loop_stats(registry& reg, std::uint64_t loop_index,
                       const runtime::loop_stats& stats);

}  // namespace omega::obs
