#include "obs/profiler.hpp"

namespace omega::obs {

void profiler::observe(std::string_view label, double seconds) {
  if (metrics_ == nullptr) return;
  histogram* cell = nullptr;
  for (const auto& [l, h] : cells_) {
    if (l == label) {
      cell = h;
      break;
    }
  }
  if (cell == nullptr) {
    // Host-time buckets: datagram handlers run hundreds of nanoseconds to
    // tens of microseconds; the top buckets catch allocation storms and
    // scheduler preemption outliers.
    cell = &metrics_->get_histogram(
        "omega_sim_handler_seconds", {{"kind", std::string(label)}},
        {1e-7, 5e-7, 1e-6, 5e-6, 2e-5, 1e-4, 1e-3, 1e-2});
    cells_.emplace_back(std::string(label), cell);
  }
  cell->observe(seconds);
}

}  // namespace omega::obs
