// Deterministic random number generation for simulations.
//
// The experiment harness must be reproducible bit-for-bit across runs and
// platforms, so we implement our own generator (xoshiro256++) and our own
// distribution transforms instead of relying on implementation-defined
// behaviour of <random> distributions.
#pragma once

#include <cstdint>

#include "common/time.hpp"

namespace omega {

/// xoshiro256++ 1.0 by Blackman & Vigna (public domain reference algorithm).
/// 256-bit state, period 2^256 - 1, excellent statistical quality, and —
/// unlike std:: distributions — fully deterministic across toolchains.
class rng {
 public:
  /// Seeds the state from a single 64-bit seed via splitmix64, which
  /// guarantees a non-zero, well-mixed initial state.
  explicit rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit output.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1) with 53 bits of entropy.
  double uniform01();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Precondition: n > 0.
  std::uint64_t uniform_below(std::uint64_t n);

  /// Bernoulli trial with success probability p (clamped to [0, 1]).
  bool bernoulli(double p);

  /// Exponentially distributed value with the given mean (inverse-CDF
  /// transform). Mean <= 0 yields 0.
  double exponential(double mean);

  /// Exponentially distributed duration with the given mean duration.
  duration exponential(duration mean);

  /// Pareto-distributed value with the given mean and tail exponent
  /// `alpha` (classic Pareto(x_m, alpha) with x_m = mean (alpha - 1) /
  /// alpha, matching the moment parameterization of
  /// `fd::delay_tail_model::pareto`). Smaller alpha = heavier tail; alpha
  /// is clamped above 1 so the mean exists. Mean <= 0 yields 0.
  double pareto(double mean, double alpha);

  /// Pareto-distributed duration with the given mean duration.
  duration pareto(duration mean, double alpha);

  /// Creates an independent child generator. Used to give every stochastic
  /// component (each link, each node's churn process, ...) its own stream so
  /// that adding a component does not perturb the draws of the others.
  rng split();

 private:
  std::uint64_t state_[4];
};

}  // namespace omega
