// Causal provenance of trace events (DESIGN.md §7).
//
// A `cause_id` names one trace event globally: the node that recorded it,
// that node's service incarnation, and the recorder-assigned per-node
// sequence number. Because every recorder numbers its events densely and
// the harness keeps one recorder per node across crash/recovery cycles,
// (origin, seq) is a unique key with no coordination and no global clock —
// exactly what lets `obs::causal_graph` rebuild a failover DAG from
// per-node rings alone, on the simulator or over real UDP.
//
// The id is small enough (16 bytes) to ride in the wire envelope of
// causally potent datagrams (proto/wire.hpp, version-2 envelope): a
// receiver handling a stamped ACCUSE or eager ALIVE records its own events
// with `cause` pointing at the remote event that provoked the send.
#pragma once

#include <cstdint>

#include "common/ids.hpp"

namespace omega {

struct cause_id {
  /// Node whose recorder captured the provoking event.
  node_id origin = node_id::invalid();
  /// Service incarnation of `origin` at record time (diagnostic: a stamp
  /// from a dead incarnation still resolves — seq alone is the key).
  incarnation inc = 0;
  /// Per-recorder sequence number of the provoking event on `origin`.
  std::uint64_t seq = 0;

  [[nodiscard]] bool valid() const { return origin.valid(); }

  friend bool operator==(const cause_id&, const cause_id&) = default;
};

}  // namespace omega
