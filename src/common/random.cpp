#include "common/random.hpp"

#include <cmath>

namespace omega {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

rng::rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64(sm);
}

std::uint64_t rng::next_u64() {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double rng::uniform01() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform01();
}

std::uint64_t rng::uniform_below(std::uint64_t n) {
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = -n % n;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % n;
  }
}

bool rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

double rng::exponential(double mean) {
  if (mean <= 0.0) return 0.0;
  // Inverse CDF; 1 - u in (0, 1] so log() never sees zero.
  return -mean * std::log(1.0 - uniform01());
}

duration rng::exponential(duration mean) {
  return from_seconds(exponential(to_seconds(mean)));
}

double rng::pareto(double mean, double alpha) {
  if (mean <= 0.0) return 0.0;
  const double a = alpha > 1.05 ? alpha : 1.05;
  const double x_m = mean * (a - 1.0) / a;
  // Inverse CDF: x_m (1 - u)^(-1/alpha); 1 - u in (0, 1] so pow() never
  // sees zero.
  return x_m * std::pow(1.0 - uniform01(), -1.0 / a);
}

duration rng::pareto(duration mean, double alpha) {
  return from_seconds(pareto(to_seconds(mean), alpha));
}

rng rng::split() {
  rng child(0);
  for (auto& word : child.state_) word = next_u64();
  // Guard against the (astronomically unlikely) all-zero state.
  child.state_[0] |= 1;
  return child;
}

}  // namespace omega
