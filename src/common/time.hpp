// Virtual time used by the whole library.
//
// All protocol code is written against `omega::time_point` / `omega::duration`
// (microsecond resolution). In simulation the clock is driven by the
// discrete-event kernel; in the real-time runtime it is backed by
// `std::chrono::steady_clock`. Keeping a single chrono-based representation
// gives unit safety (seconds vs. microseconds bugs do not compile).
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

namespace omega {

/// Canonical duration type: signed 64-bit microseconds.
using duration = std::chrono::duration<std::int64_t, std::micro>;

/// Chrono clock tag for the service's virtual timeline. Not a real clock:
/// `now()` is provided by a `clock_source`, never by this type.
struct virtual_clock {
  using rep = omega::duration::rep;
  using period = omega::duration::period;
  using duration = omega::duration;  // NOLINT: chrono clock protocol name
  using time_point = std::chrono::time_point<virtual_clock>;
  static constexpr bool is_steady = true;
};

/// Canonical time point on the virtual timeline. Simulations start at t = 0.
using time_point = virtual_clock::time_point;

inline constexpr time_point time_origin{};

/// Convenience literals-ish helpers (avoid pulling chrono literals into every
/// header).
[[nodiscard]] constexpr duration usec(std::int64_t n) { return duration{n}; }
[[nodiscard]] constexpr duration msec(std::int64_t n) { return duration{n * 1000}; }
[[nodiscard]] constexpr duration sec(std::int64_t n) { return duration{n * 1'000'000}; }

/// Converts a duration to fractional seconds (for statistics and reports).
[[nodiscard]] constexpr double to_seconds(duration d) {
  return std::chrono::duration<double>(d).count();
}
[[nodiscard]] constexpr double to_seconds(time_point t) {
  return to_seconds(t.time_since_epoch());
}

/// Converts fractional seconds to the canonical duration (rounds toward zero).
[[nodiscard]] constexpr duration from_seconds(double s) {
  return duration{static_cast<std::int64_t>(s * 1e6)};
}

[[nodiscard]] inline std::string to_string(duration d) {
  return std::to_string(to_seconds(d)) + "s";
}
[[nodiscard]] inline std::string to_string(time_point t) {
  return "t=" + std::to_string(to_seconds(t)) + "s";
}

}  // namespace omega
