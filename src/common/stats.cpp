#include "common/stats.hpp"

#include <algorithm>
#include <array>
#include <cmath>

namespace omega {

void running_stats::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void running_stats::reset() {
  n_ = 0;
  mean_ = 0.0;
  m2_ = 0.0;
}

double running_stats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double running_stats::stddev() const { return std::sqrt(variance()); }

double running_stats::ci95_half_width() const {
  if (n_ < 2) return 0.0;
  // Two-sided 95% t quantiles for small degrees of freedom, then the normal
  // approximation (1.96) beyond 30.
  static constexpr std::array<double, 31> t95 = {
      0,     12.71, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
      2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093,
      2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045,
      2.042};
  const std::size_t df = n_ - 1;
  const double t = df < t95.size() ? t95[df] : 1.96;
  return t * stddev() / std::sqrt(static_cast<double>(n_));
}

windowed_stats::windowed_stats(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 1)) {}

void windowed_stats::add(double x) {
  window_.push_back(x);
  const double x2 = x * x;
  sum_ += x;
  sum_sq_ += x2;
  sum_cube_ += x2 * x;
  sum_quad_ += x2 * x2;
  if (window_.size() > capacity_) {
    const double old = window_.front();
    window_.pop_front();
    const double old2 = old * old;
    sum_ -= old;
    sum_sq_ -= old2;
    sum_cube_ -= old2 * old;
    sum_quad_ -= old2 * old2;
  }
}

void windowed_stats::reset() {
  window_.clear();
  sum_ = 0.0;
  sum_sq_ = 0.0;
  sum_cube_ = 0.0;
  sum_quad_ = 0.0;
}

double windowed_stats::mean() const {
  if (window_.empty()) return 0.0;
  return sum_ / static_cast<double>(window_.size());
}

double windowed_stats::variance() const {
  const std::size_t n = window_.size();
  if (n < 2) return 0.0;
  const double m = mean();
  // Floating-point cancellation can make this slightly negative; clamp.
  const double v = (sum_sq_ - static_cast<double>(n) * m * m) / static_cast<double>(n - 1);
  return std::max(v, 0.0);
}

double windowed_stats::stddev() const { return std::sqrt(variance()); }

double windowed_stats::minimum() const {
  if (window_.empty()) return 0.0;
  return *std::min_element(window_.begin(), window_.end());
}

double windowed_stats::excess_kurtosis() const {
  const std::size_t count = window_.size();
  if (count < 4) return 0.0;
  const double n = static_cast<double>(count);
  // Central moments from the raw power sums (biased/population form — the
  // threshold consumer only needs the order of magnitude, not an unbiased
  // estimator): m2 = E[x^2] - m^2, m4 = E[x^4] - 4mE[x^3] + 6m^2E[x^2] - 3m^4.
  const double m = sum_ / n;
  const double r2 = sum_sq_ / n;
  const double r3 = sum_cube_ / n;
  const double r4 = sum_quad_ / n;
  const double m2 = r2 - m * m;
  if (!(m2 > 0.0)) return 0.0;
  const double m4 = r4 - 4.0 * m * r3 + 6.0 * m * m * r2 - 3.0 * m * m * m * m;
  // Degenerate windows (near-constant samples) cancel catastrophically;
  // treat them as shapeless rather than reporting noise.
  if (m2 * m2 < 1e-30) return 0.0;
  return m4 / (m2 * m2) - 3.0;
}

void time_fraction::begin(time_point start, bool initial) {
  last_change_ = start;
  current_ = initial;
  started_ = true;
  time_true_ = duration{0};
  total_ = duration{0};
}

void time_fraction::update(time_point t, bool value) {
  if (!started_ || value == current_) return;
  const duration elapsed = t - last_change_;
  total_ += elapsed;
  if (current_) time_true_ += elapsed;
  last_change_ = t;
  current_ = value;
}

void time_fraction::finish(time_point end) {
  if (!started_) return;
  const duration elapsed = end - last_change_;
  total_ += elapsed;
  if (current_) time_true_ += elapsed;
  last_change_ = end;
  started_ = false;
}

double time_fraction::fraction() const {
  if (total_.count() <= 0) return 0.0;
  return to_seconds(time_true_) / to_seconds(total_);
}

}  // namespace omega
