// Strongly-typed identifiers used across the leader-election service.
//
// The paper distinguishes three kinds of identity:
//   * a workstation / node that hosts one instance of the service,
//   * an application process registered with its local service instance,
//   * a process group inside which a leader is elected.
// Processes that crash and later recover come back with a fresh
// *incarnation*; protocol state belonging to an older incarnation is
// discarded by every peer (the recovered process is a "new" member).
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <limits>
#include <string>

namespace omega {

namespace detail {

// CRTP base for integer-backed strong id types: comparable, hashable,
// printable, but never implicitly convertible between different id kinds.
template <typename Tag, typename Rep = std::uint32_t>
class strong_id {
 public:
  using rep_type = Rep;

  constexpr strong_id() = default;
  constexpr explicit strong_id(Rep value) : value_(value) {}

  [[nodiscard]] constexpr Rep value() const { return value_; }
  [[nodiscard]] constexpr bool valid() const { return value_ != invalid_rep; }

  friend constexpr auto operator<=>(strong_id, strong_id) = default;

  // An explicitly invalid value; default-constructed ids are invalid.
  static constexpr Rep invalid_rep = std::numeric_limits<Rep>::max();
  static constexpr strong_id invalid() { return strong_id{invalid_rep}; }

 private:
  Rep value_ = invalid_rep;
};

}  // namespace detail

struct node_id_tag {};
struct process_id_tag {};
struct group_id_tag {};

/// Identifies one workstation (one service instance) in the cluster roster.
using node_id = detail::strong_id<node_id_tag>;

/// Identifies one application process registered with the service.
/// In the paper's experiments there is exactly one application process per
/// workstation, but the API supports many processes per node.
using process_id = detail::strong_id<process_id_tag>;

/// Identifies a process group; every group elects its own leader.
using group_id = detail::strong_id<group_id_tag>;

/// Monotonically increasing restart counter of a node. A node that crashes
/// and recovers joins with a larger incarnation; peers treat state tagged
/// with an older incarnation as belonging to a dead instance.
using incarnation = std::uint32_t;

[[nodiscard]] inline std::string to_string(node_id id) {
  return id.valid() ? "n" + std::to_string(id.value()) : "n<invalid>";
}
[[nodiscard]] inline std::string to_string(process_id id) {
  return id.valid() ? "p" + std::to_string(id.value()) : "p<invalid>";
}
[[nodiscard]] inline std::string to_string(group_id id) {
  return id.valid() ? "g" + std::to_string(id.value()) : "g<invalid>";
}

}  // namespace omega

namespace std {
template <typename Tag, typename Rep>
struct hash<omega::detail::strong_id<Tag, Rep>> {
  size_t operator()(omega::detail::strong_id<Tag, Rep> id) const noexcept {
    return std::hash<Rep>{}(id.value());
  }
};
}  // namespace std
