// Substrate-neutral clock and timer interfaces.
//
// All protocol modules (failure detector, group maintenance, electors,
// service) are written against these two interfaces plus `net::transport`.
// The discrete-event simulator and the real-time UDP runtime both implement
// them, which is what lets the very same service code run in a reproducible
// simulation or on real sockets.
#pragma once

#include <cstdint>

#include "common/task.hpp"
#include "common/time.hpp"

namespace omega {

/// Reads the current virtual (or real) time.
class clock_source {
 public:
  virtual ~clock_source() = default;
  [[nodiscard]] virtual time_point now() const = 0;
};

/// Opaque handle for a scheduled timer; 0 is "no timer".
using timer_id = std::uint64_t;
inline constexpr timer_id no_timer = 0;

/// One-shot timer scheduling. Implementations must guarantee that a
/// cancelled timer never fires and that callbacks run on the component's
/// event loop (no cross-thread callbacks).
class timer_service {
 public:
  virtual ~timer_service() = default;

  /// Schedules `fn` to run at absolute time `when` (or immediately if `when`
  /// is in the past). Returns a handle usable with `cancel`. Takes a
  /// move-only SBO callable: arming a timer with a small capture is
  /// allocation-free on the simulator's slab (lambdas convert implicitly).
  virtual timer_id schedule_at(time_point when, unique_task fn) = 0;

  /// Schedules `fn` to run `after` from now.
  virtual timer_id schedule_after(duration after, unique_task fn) = 0;

  /// Cancels a pending timer; no-op if it already fired or was cancelled.
  virtual void cancel(timer_id id) = 0;
};

/// RAII helper owning at most one pending timer. Re-arming cancels the
/// previous timer; destruction cancels. Protocol components use this for
/// their periodic tasks so that tearing a component down (e.g. a simulated
/// workstation crash) reliably silences it.
class scoped_timer {
 public:
  explicit scoped_timer(timer_service& timers) : timers_(&timers) {}
  ~scoped_timer() { cancel(); }

  scoped_timer(const scoped_timer&) = delete;
  scoped_timer& operator=(const scoped_timer&) = delete;

  void arm_at(time_point when, unique_task fn) {
    cancel();
    id_ = timers_->schedule_at(when, std::move(fn));
  }
  void arm_after(duration after, unique_task fn) {
    cancel();
    id_ = timers_->schedule_after(after, std::move(fn));
  }
  void cancel() {
    if (id_ != no_timer) {
      timers_->cancel(id_);
      id_ = no_timer;
    }
  }
  [[nodiscard]] bool armed() const { return id_ != no_timer; }

 private:
  timer_service* timers_;
  timer_id id_ = no_timer;
};

}  // namespace omega
