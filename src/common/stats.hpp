// Statistics helpers used by the link-quality estimator and by the
// experiment harness (sample means, variances, confidence intervals and
// time-weighted fractions).
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>

#include "common/time.hpp"

namespace omega {

/// Welford running mean/variance over an unbounded stream.
class running_stats {
 public:
  void add(double x);
  void reset();

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] bool empty() const { return n_ == 0; }
  [[nodiscard]] double mean() const { return n_ > 0 ? mean_ : 0.0; }
  /// Unbiased sample variance (0 when fewer than two samples).
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  /// Half-width of the ~95% Student-t confidence interval on the mean
  /// (normal approximation of the t quantile for n > 30; exact table below).
  [[nodiscard]] double ci95_half_width() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Mean/variance over a sliding window of the most recent `capacity` samples.
/// Used by the link-quality estimator so that old network behaviour ages out.
class windowed_stats {
 public:
  explicit windowed_stats(std::size_t capacity);

  void add(double x);
  void reset();

  [[nodiscard]] std::size_t count() const { return window_.size(); }
  [[nodiscard]] bool full() const { return window_.size() == capacity_; }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  /// Smallest sample currently in the window (0 if empty). O(window).
  [[nodiscard]] double minimum() const;
  /// Excess kurtosis of the window (normal = 0, exponential = 6; heavier
  /// tails exceed that, and distributions whose fourth moment diverges —
  /// Pareto with alpha <= 4 — blow far past it as the window fills). The
  /// link-quality estimator uses this as its online tail-shape signal.
  /// O(1) from running power sums; 0 with < 4 samples or ~zero variance.
  /// Shift-invariant, so it works on skew-polluted raw clock differences.
  [[nodiscard]] double excess_kurtosis() const;

 private:
  std::size_t capacity_;
  std::deque<double> window_;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
  double sum_cube_ = 0.0;
  double sum_quad_ = 0.0;
};

/// Accumulates the total time a boolean predicate spends `true` on the
/// virtual timeline; yields the fraction of time true (e.g. P_leader).
class time_fraction {
 public:
  /// Starts accounting at `start` with the given initial predicate value.
  void begin(time_point start, bool initial);
  /// Records a (possibly redundant) predicate value change at time `t`.
  /// Precondition: t is monotonically non-decreasing across calls.
  void update(time_point t, bool value);
  /// Closes accounting at `end` and freezes the totals.
  void finish(time_point end);

  [[nodiscard]] duration time_true() const { return time_true_; }
  [[nodiscard]] duration total() const { return total_; }
  /// Fraction of observed time with the predicate true (0 if no time).
  [[nodiscard]] double fraction() const;

 private:
  time_point last_change_{};
  bool current_ = false;
  bool started_ = false;
  duration time_true_{0};
  duration total_{0};
};

}  // namespace omega
