#include "common/serialization.hpp"

#include <cstring>
#include <limits>
#include <stdexcept>

namespace omega {

namespace {

template <typename T>
void append_le(std::vector<std::byte>& buf, T v) {
  static_assert(std::is_trivially_copyable_v<T>);
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    buf.push_back(static_cast<std::byte>((static_cast<std::uint64_t>(v) >> (8 * i)) & 0xff));
  }
}

}  // namespace

void byte_writer::write_u8(std::uint8_t v) { buf_.push_back(static_cast<std::byte>(v)); }
void byte_writer::write_u16(std::uint16_t v) { append_le(buf_, v); }
void byte_writer::write_u32(std::uint32_t v) { append_le(buf_, v); }
void byte_writer::write_u64(std::uint64_t v) { append_le(buf_, v); }

void byte_writer::write_i64(std::int64_t v) {
  append_le(buf_, static_cast<std::uint64_t>(v));
}

void byte_writer::write_f64(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  write_u64(bits);
}

void byte_writer::write_bytes(std::span<const std::byte> bytes) {
  if (bytes.size() > std::numeric_limits<std::uint16_t>::max()) {
    throw std::length_error("byte_writer: byte string exceeds 64KiB");
  }
  write_u16(static_cast<std::uint16_t>(bytes.size()));
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

void byte_writer::write_string(std::string_view s) {
  write_bytes(std::as_bytes(std::span<const char>(s.data(), s.size())));
}

bool byte_reader::ensure(std::size_t n) {
  if (!ok_ || data_.size() - pos_ < n) {
    ok_ = false;
    return false;
  }
  return true;
}

std::uint8_t byte_reader::read_u8() {
  if (!ensure(1)) return 0;
  return static_cast<std::uint8_t>(data_[pos_++]);
}

std::uint16_t byte_reader::read_u16() {
  if (!ensure(2)) return 0;
  std::uint16_t v = 0;
  for (std::size_t i = 0; i < 2; ++i) {
    v |= static_cast<std::uint16_t>(static_cast<std::uint8_t>(data_[pos_ + i])) << (8 * i);
  }
  pos_ += 2;
  return v;
}

std::uint32_t byte_reader::read_u32() {
  if (!ensure(4)) return 0;
  std::uint32_t v = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(data_[pos_ + i])) << (8 * i);
  }
  pos_ += 4;
  return v;
}

std::uint64_t byte_reader::read_u64() {
  if (!ensure(8)) return 0;
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(data_[pos_ + i])) << (8 * i);
  }
  pos_ += 8;
  return v;
}

std::int64_t byte_reader::read_i64() {
  return static_cast<std::int64_t>(read_u64());
}

double byte_reader::read_f64() {
  const std::uint64_t bits = read_u64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::span<const std::byte> byte_reader::read_bytes() {
  const std::uint16_t n = read_u16();
  if (!ensure(n)) return {};
  auto out = data_.subspan(pos_, n);
  pos_ += n;
  return out;
}

std::string byte_reader::read_string() {
  auto bytes = read_bytes();
  return std::string(reinterpret_cast<const char*>(bytes.data()), bytes.size());
}

}  // namespace omega
