// Bounded binary serialization.
//
// Wire messages are serialized with an explicit little-endian format so that
// (a) the byte counts used for the bandwidth figures are exact and stable and
// (b) the same encoding works over the real UDP runtime. The reader is
// bounds-checked: malformed or truncated input flips the stream into a failed
// state instead of reading out of bounds (a deliberately conservative choice
// for a network-facing parser).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/ids.hpp"
#include "common/time.hpp"

namespace omega {

/// Appends primitive values to a growing byte buffer.
class byte_writer {
 public:
  byte_writer() = default;
  /// Adopts `buf` (cleared) as the output buffer, reusing its capacity —
  /// the allocation-free encode path writes into pool-recycled storage.
  explicit byte_writer(std::vector<std::byte> buf) : buf_(std::move(buf)) {
    buf_.clear();
  }

  void write_u8(std::uint8_t v);
  void write_u16(std::uint16_t v);
  void write_u32(std::uint32_t v);
  void write_u64(std::uint64_t v);
  void write_i64(std::int64_t v);
  void write_f64(double v);
  void write_bool(bool v) { write_u8(v ? 1 : 0); }

  /// Length-prefixed (u16) byte string; throws std::length_error above 64 KiB.
  void write_bytes(std::span<const std::byte> bytes);
  void write_string(std::string_view s);

  template <typename Tag, typename Rep>
  void write_id(detail::strong_id<Tag, Rep> id) {
    write_u32(static_cast<std::uint32_t>(id.value()));
  }

  void write_duration(duration d) { write_i64(d.count()); }
  void write_time(time_point t) { write_i64(t.time_since_epoch().count()); }

  [[nodiscard]] const std::vector<std::byte>& buffer() const { return buf_; }
  [[nodiscard]] std::vector<std::byte> take() { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }

 private:
  std::vector<std::byte> buf_;
};

/// Reads primitive values from a byte span with bounds checking.
///
/// After any failed read the reader is poisoned: `ok()` returns false and all
/// subsequent reads return zero values. Callers validate once at the end.
class byte_reader {
 public:
  explicit byte_reader(std::span<const std::byte> data) : data_(data) {}

  std::uint8_t read_u8();
  std::uint16_t read_u16();
  std::uint32_t read_u32();
  std::uint64_t read_u64();
  std::int64_t read_i64();
  double read_f64();
  bool read_bool() { return read_u8() != 0; }

  std::span<const std::byte> read_bytes();
  std::string read_string();

  template <typename Id>
  Id read_id() {
    return Id{static_cast<typename Id::rep_type>(read_u32())};
  }

  duration read_duration() { return duration{read_i64()}; }
  time_point read_time() { return time_point{duration{read_i64()}}; }

  /// True while every read so far stayed in bounds.
  [[nodiscard]] bool ok() const { return ok_; }
  /// Bytes not yet consumed.
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  /// True iff the reader is healthy and fully consumed.
  [[nodiscard]] bool exhausted() const { return ok_ && remaining() == 0; }

 private:
  bool ensure(std::size_t n);

  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace omega
