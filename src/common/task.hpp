// Move-only type-erased `void()` callable with small-buffer optimization.
//
// The discrete-event simulator executes tens of millions of timer callbacks
// per run; `std::function`'s copyability requirement forces almost every
// capturing lambda onto the heap (libstdc++ only stores pointer-sized
// callables inline). `unique_task` stores any nothrow-movable callable of up
// to `inline_size` bytes in place — enough for every closure in the protocol
// stack (this + a shared payload + two node ids fits with room to spare) —
// so arming a timer allocates nothing. Larger or throwing-move callables
// fall back to one heap allocation, exactly like std::function.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace omega {

class unique_task {
 public:
  /// Inline capture budget; closures above it are heap-allocated.
  static constexpr std::size_t inline_size = 64;

  unique_task() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, unique_task> &&
                std::is_invocable_r_v<void, std::remove_cvref_t<F>&>>>
  unique_task(F&& f) {  // NOLINT(google-explicit-constructor): drop-in for
    emplace(std::forward<F>(f));  // the std::function it replaces
  }

  unique_task(unique_task&& other) noexcept { move_from(other); }
  unique_task& operator=(unique_task&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  unique_task(const unique_task&) = delete;
  unique_task& operator=(const unique_task&) = delete;
  ~unique_task() { reset(); }

  void operator()() { ops_->call(target()); }

  [[nodiscard]] explicit operator bool() const { return ops_ != nullptr; }

  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(target());
      ops_ = nullptr;
    }
  }

 private:
  struct ops_t {
    void (*call)(void*);
    void (*destroy)(void*);
    /// Move-construct at `dst` from `src`, destroying `src`. Only used for
    /// inline storage; heap callables relocate by stealing the pointer.
    void (*relocate)(void* dst, void* src);
    bool stored_inline;
  };

  template <typename F>
  void emplace(F&& f) {
    using fn = std::remove_cvref_t<F>;
    if constexpr (sizeof(fn) <= inline_size &&
                  alignof(fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<fn>) {
      ::new (static_cast<void*>(buf_)) fn(std::forward<F>(f));
      static constexpr ops_t ops = {
          [](void* p) { (*static_cast<fn*>(p))(); },
          [](void* p) { static_cast<fn*>(p)->~fn(); },
          [](void* dst, void* src) {
            ::new (dst) fn(std::move(*static_cast<fn*>(src)));
            static_cast<fn*>(src)->~fn();
          },
          true,
      };
      ops_ = &ops;
    } else {
      heap_ = new fn(std::forward<F>(f));
      static constexpr ops_t ops = {
          [](void* p) { (*static_cast<fn*>(p))(); },
          [](void* p) { delete static_cast<fn*>(p); },
          nullptr,
          false,
      };
      ops_ = &ops;
    }
  }

  void move_from(unique_task& other) noexcept {
    ops_ = other.ops_;
    if (ops_ == nullptr) return;
    if (ops_->stored_inline) {
      ops_->relocate(buf_, other.buf_);
    } else {
      heap_ = other.heap_;
    }
    other.ops_ = nullptr;
  }

  [[nodiscard]] void* target() {
    return ops_->stored_inline ? static_cast<void*>(buf_) : heap_;
  }

  const ops_t* ops_ = nullptr;
  union {
    alignas(std::max_align_t) std::byte buf_[inline_size];
    void* heap_;
  };
};

}  // namespace omega
