#include "proto/wire.hpp"

#include <limits>

namespace omega::proto {

namespace {

// Hard cap on repeated-element counts: a datagram cannot meaningfully carry
// more, and the cap stops malformed length fields from causing huge
// allocations in the parser.
constexpr std::size_t max_repeated = 4096;

void encode_body(byte_writer& w, const alive_msg& m) {
  w.write_id(m.from);
  w.write_u32(m.inc);
  w.write_u64(m.seq);
  w.write_time(m.send_time);
  w.write_duration(m.eta);
  w.write_u16(static_cast<std::uint16_t>(m.groups.size()));
  for (const auto& g : m.groups) {
    w.write_id(g.group);
    w.write_id(g.pid);
    w.write_bool(g.candidate);
    w.write_bool(g.competing);
    w.write_time(g.accusation_time);
    w.write_u32(g.phase);
    w.write_id(g.local_leader);
    w.write_time(g.local_leader_acc);
  }
}

bool decode_body(byte_reader& r, alive_msg& m) {
  m.from = r.read_id<node_id>();
  m.inc = r.read_u32();
  m.seq = r.read_u64();
  m.send_time = r.read_time();
  m.eta = r.read_duration();
  const std::size_t n = r.read_u16();
  if (n > max_repeated) return false;
  m.groups.clear();
  m.groups.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    group_payload g;
    g.group = r.read_id<group_id>();
    g.pid = r.read_id<process_id>();
    g.candidate = r.read_bool();
    g.competing = r.read_bool();
    g.accusation_time = r.read_time();
    g.phase = r.read_u32();
    g.local_leader = r.read_id<process_id>();
    g.local_leader_acc = r.read_time();
    m.groups.push_back(g);
  }
  return r.exhausted();
}

void encode_body(byte_writer& w, const accuse_msg& m) {
  w.write_id(m.from);
  w.write_u32(m.from_inc);
  w.write_id(m.group);
  w.write_id(m.target);
  w.write_u32(m.target_inc);
  w.write_u32(m.phase);
  w.write_time(m.when);
}

bool decode_body(byte_reader& r, accuse_msg& m) {
  m.from = r.read_id<node_id>();
  m.from_inc = r.read_u32();
  m.group = r.read_id<group_id>();
  m.target = r.read_id<process_id>();
  m.target_inc = r.read_u32();
  m.phase = r.read_u32();
  m.when = r.read_time();
  return r.exhausted();
}

void encode_body(byte_writer& w, const hello_msg& m) {
  w.write_id(m.from);
  w.write_u32(m.inc);
  w.write_bool(m.reply_requested);
  w.write_u16(static_cast<std::uint16_t>(m.entries.size()));
  for (const auto& e : m.entries) {
    w.write_id(e.group);
    w.write_id(e.pid);
    w.write_bool(e.candidate);
  }
}

bool decode_body(byte_reader& r, hello_msg& m) {
  m.from = r.read_id<node_id>();
  m.inc = r.read_u32();
  m.reply_requested = r.read_bool();
  const std::size_t n = r.read_u16();
  if (n > max_repeated) return false;
  m.entries.clear();
  m.entries.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    hello_msg::entry e;
    e.group = r.read_id<group_id>();
    e.pid = r.read_id<process_id>();
    e.candidate = r.read_bool();
    m.entries.push_back(e);
  }
  return r.exhausted();
}

void encode_body(byte_writer& w, const hello_ack_msg& m) {
  w.write_id(m.from);
  w.write_u32(m.inc);
  w.write_u16(static_cast<std::uint16_t>(m.entries.size()));
  for (const auto& e : m.entries) {
    w.write_id(e.group);
    w.write_id(e.pid);
    w.write_id(e.node);
    w.write_u32(e.inc);
    w.write_bool(e.candidate);
  }
}

bool decode_body(byte_reader& r, hello_ack_msg& m) {
  m.from = r.read_id<node_id>();
  m.inc = r.read_u32();
  const std::size_t n = r.read_u16();
  if (n > max_repeated) return false;
  m.entries.clear();
  m.entries.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    hello_ack_msg::entry e;
    e.group = r.read_id<group_id>();
    e.pid = r.read_id<process_id>();
    e.node = r.read_id<node_id>();
    e.inc = r.read_u32();
    e.candidate = r.read_bool();
    m.entries.push_back(e);
  }
  return r.exhausted();
}

void encode_body(byte_writer& w, const leave_msg& m) {
  w.write_id(m.from);
  w.write_u32(m.inc);
  w.write_id(m.group);
  w.write_id(m.pid);
}

bool decode_body(byte_reader& r, leave_msg& m) {
  m.from = r.read_id<node_id>();
  m.inc = r.read_u32();
  m.group = r.read_id<group_id>();
  m.pid = r.read_id<process_id>();
  return r.exhausted();
}

void encode_body(byte_writer& w, const rate_request_msg& m) {
  w.write_id(m.from);
  w.write_u32(m.inc);
  w.write_duration(m.desired_eta);
}

bool decode_body(byte_reader& r, rate_request_msg& m) {
  m.from = r.read_id<node_id>();
  m.inc = r.read_u32();
  m.desired_eta = r.read_duration();
  return r.exhausted();
}

// The shared envelope prefix of both encode paths: version 1 when no
// cause is attached, version 2 with the 16-byte stamp otherwise.
void write_envelope(byte_writer& w, const wire_message& msg, cause_id cause) {
  if (cause.valid()) {
    w.write_u8(protocol_version_stamped);
    w.write_u8(static_cast<std::uint8_t>(kind_of(msg)));
    w.write_id(cause.origin);
    w.write_u32(cause.inc);
    w.write_u64(cause.seq);
  } else {
    w.write_u8(protocol_version);
    w.write_u8(static_cast<std::uint8_t>(kind_of(msg)));
  }
}

}  // namespace

msg_kind kind_of(const wire_message& msg) {
  struct visitor {
    msg_kind operator()(const alive_msg&) const { return msg_kind::alive; }
    msg_kind operator()(const accuse_msg&) const { return msg_kind::accuse; }
    msg_kind operator()(const hello_msg&) const { return msg_kind::hello; }
    msg_kind operator()(const hello_ack_msg&) const { return msg_kind::hello_ack; }
    msg_kind operator()(const leave_msg&) const { return msg_kind::leave; }
    msg_kind operator()(const rate_request_msg&) const { return msg_kind::rate_request; }
  };
  return std::visit(visitor{}, msg);
}

std::string_view to_string(msg_kind kind) {
  switch (kind) {
    case msg_kind::alive: return "alive";
    case msg_kind::accuse: return "accuse";
    case msg_kind::hello: return "hello";
    case msg_kind::hello_ack: return "hello_ack";
    case msg_kind::leave: return "leave";
    case msg_kind::rate_request: return "rate_request";
  }
  return "unknown";
}

std::vector<std::byte> encode(const wire_message& msg, cause_id cause) {
  byte_writer w;
  write_envelope(w, msg, cause);
  std::visit([&w](const auto& m) { encode_body(w, m); }, msg);
  return w.take();
}

net::shared_payload encode_shared(const wire_message& msg,
                                  net::payload_pool& pool, cause_id cause) {
  byte_writer w(pool.checkout());
  write_envelope(w, msg, cause);
  std::visit([&w](const auto& m) { encode_body(w, m); }, msg);
  return pool.seal(w.take());
}

net::shared_payload encode_cache::get(const wire_message& msg,
                                      net::payload_pool& pool,
                                      cause_id cause) {
  // A stamp makes the envelope unique per send: encode fresh and keep the
  // cache keyed on the last *unstamped* encoding.
  if (cause.valid()) return encode_shared(msg, pool, cause);
  if (cached_ && key_ == msg) {
    ++hits_;
    return cached_;
  }
  ++misses_;
  key_ = msg;
  cached_ = encode_shared(msg, pool);
  return cached_;
}

void encode_cache::invalidate() {
  cached_ = net::shared_payload{};
  key_ = wire_message{};
}

bool decode_into(wire_message& out, std::span<const std::byte> bytes,
                 cause_id* cause) {
  byte_reader r(bytes);
  const std::uint8_t version = r.read_u8();
  const std::uint8_t type = r.read_u8();
  if (cause != nullptr) *cause = cause_id{};
  if (!r.ok() ||
      (version != protocol_version && version != protocol_version_stamped)) {
    return false;
  }
  if (version == protocol_version_stamped) {
    cause_id stamp;
    stamp.origin = r.read_id<node_id>();
    stamp.inc = r.read_u32();
    stamp.seq = r.read_u64();
    if (!r.ok()) return false;
    if (cause != nullptr) *cause = stamp;
  }
  // Decode into the alternative `out` already holds when the kind matches
  // (the steady-state case: a stream of ALIVEs into the same scratch), so
  // the repeated-field vectors keep their capacity across datagrams.
  const auto into = [&out, &r](auto tag) {
    using T = decltype(tag);
    T* slot = std::get_if<T>(&out);
    if (slot == nullptr) slot = &out.emplace<T>();
    return decode_body(r, *slot);
  };
  switch (static_cast<msg_kind>(type)) {
    case msg_kind::alive:
      return into(alive_msg{});
    case msg_kind::accuse:
      return into(accuse_msg{});
    case msg_kind::hello:
      return into(hello_msg{});
    case msg_kind::hello_ack:
      return into(hello_ack_msg{});
    case msg_kind::leave:
      return into(leave_msg{});
    case msg_kind::rate_request:
      return into(rate_request_msg{});
  }
  return false;
}

std::optional<wire_message> decode(std::span<const std::byte> bytes,
                                   cause_id* cause) {
  wire_message out;
  if (!decode_into(out, bytes, cause)) return std::nullopt;
  return out;
}

std::optional<msg_kind> peek_kind(std::span<const std::byte> bytes) {
  byte_reader r(bytes);
  const std::uint8_t version = r.read_u8();
  const std::uint8_t type = r.read_u8();
  if (!r.ok() ||
      (version != protocol_version && version != protocol_version_stamped)) {
    return std::nullopt;
  }
  // Same exhaustive switch as decode(): a new message type added there
  // without a case here trips -Wswitch instead of silently classifying
  // as malformed.
  switch (static_cast<msg_kind>(type)) {
    case msg_kind::alive:
    case msg_kind::accuse:
    case msg_kind::hello:
    case msg_kind::hello_ack:
    case msg_kind::leave:
    case msg_kind::rate_request:
      return static_cast<msg_kind>(type);
  }
  return std::nullopt;
}

node_id sender_of(const wire_message& msg) {
  return std::visit([](const auto& m) { return m.from; }, msg);
}

incarnation incarnation_of(const wire_message& msg) {
  return std::visit(
      [](const auto& m) -> incarnation {
        if constexpr (std::is_same_v<std::decay_t<decltype(m)>, accuse_msg>) {
          return m.from_inc;
        } else {
          return m.inc;
        }
      },
      msg);
}

}  // namespace omega::proto
