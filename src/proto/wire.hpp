// Wire protocol of the leader-election service.
//
// Six datagram types, mirroring Figure 2 of the paper:
//   ALIVE      — heartbeat of the shared failure detector, carrying one
//                election payload per group the sender is active in
//                (the shared-FD architecture of Deianov/Toueg amortizes one
//                heartbeat stream over every group and application).
//   ACCUSE     — "I suspected you": drives the accusation-time mechanism of
//                the Omega_lc / Omega_l algorithms.
//   HELLO      — group membership announcement / periodic anti-entropy.
//   HELLO_ACK  — unicast membership snapshot sent back to a (re)joiner.
//   LEAVE      — voluntary group departure.
//   RATE_REQ   — failure-detector rate renegotiation: the monitor tells the
//                sender the heartbeat interval eta its QoS requires on this
//                link (output of the FD configurator, §3 of the paper).
//
// Every message carries the sender's incarnation; receivers drop state from
// older incarnations of the same node (a recovered workstation is a new
// member). All encodings are little-endian and bounds-checked on parse.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <variant>
#include <vector>

#include "common/causality.hpp"
#include "common/ids.hpp"
#include "common/serialization.hpp"
#include "common/time.hpp"
#include "net/shared_payload.hpp"

namespace omega::proto {

/// Election state for one group, piggybacked on an ALIVE message.
struct group_payload {
  group_id group;
  process_id pid;                 // sending process within this group
  bool candidate = false;         // willing to lead (join-time flag)
  bool competing = false;         // Omega_l: actively contending for leadership
  time_point accusation_time{};   // last time `pid` was (effectively) accused
  std::uint32_t phase = 0;        // Omega_l: competition epoch counter
  // Omega_lc stage-1 result, forwarded so peers can pick a global leader even
  // when their direct link to it is down:
  process_id local_leader = process_id::invalid();
  time_point local_leader_acc{};

  friend bool operator==(const group_payload&, const group_payload&) = default;
};

/// Node-level heartbeat. `seq` increases by one per ALIVE actually sent, so
/// the link-quality estimator can infer losses from gaps.
struct alive_msg {
  node_id from;
  incarnation inc = 0;
  std::uint64_t seq = 0;
  time_point send_time{};
  duration eta{};  // sender's current heartbeat interval
  std::vector<group_payload> groups;

  friend bool operator==(const alive_msg&, const alive_msg&) = default;
};

/// Sent by a monitor to the process it just started suspecting.
struct accuse_msg {
  node_id from;
  incarnation from_inc = 0;
  group_id group;
  process_id target;
  incarnation target_inc = 0;  // incarnation the accuser observed
  std::uint32_t phase = 0;     // phase of the last ALIVE the accuser saw
  time_point when{};           // accuser's time of the suspicion

  friend bool operator==(const accuse_msg&, const accuse_msg&) = default;
};

/// Membership announcement for all local processes. Broadcast on join and
/// periodically afterwards (anti-entropy against lost HELLOs and recoveries).
struct hello_msg {
  struct entry {
    group_id group;
    process_id pid;
    bool candidate = false;
    friend bool operator==(const entry&, const entry&) = default;
  };
  node_id from;
  incarnation inc = 0;
  bool reply_requested = false;  // initial join solicits a HELLO_ACK snapshot
  std::vector<entry> entries;

  friend bool operator==(const hello_msg&, const hello_msg&) = default;
};

/// Unicast membership snapshot (one entry per known (group, process)).
struct hello_ack_msg {
  struct entry {
    group_id group;
    process_id pid;
    node_id node;
    incarnation inc = 0;
    bool candidate = false;
    friend bool operator==(const entry&, const entry&) = default;
  };
  node_id from;
  incarnation inc = 0;
  std::vector<entry> entries;

  friend bool operator==(const hello_ack_msg&, const hello_ack_msg&) = default;
};

/// Voluntary departure of one process from one group.
struct leave_msg {
  node_id from;
  incarnation inc = 0;
  group_id group;
  process_id pid;

  friend bool operator==(const leave_msg&, const leave_msg&) = default;
};

/// FD rate renegotiation: "my QoS needs your heartbeats every `desired_eta`".
struct rate_request_msg {
  node_id from;
  incarnation inc = 0;
  duration desired_eta{};

  friend bool operator==(const rate_request_msg&, const rate_request_msg&) = default;
};

using wire_message = std::variant<alive_msg, accuse_msg, hello_msg,
                                  hello_ack_msg, leave_msg, rate_request_msg>;

/// Datagram type tags of the wire envelope (the byte after the version).
enum class msg_kind : std::uint8_t {
  alive = 1,
  accuse = 2,
  hello = 3,
  hello_ack = 4,
  leave = 5,
  rate_request = 6,
};

/// Baseline protocol version: `[ver u8][type u8][body]`.
inline constexpr std::uint8_t protocol_version = 1;
/// Causally stamped envelope (DESIGN.md §7): the (version, type) pair is
/// followed by a 16-byte cause id — `[origin u32][inc u32][seq u64]` —
/// naming the trace event that provoked this datagram, before the
/// unchanged body. Encoders emit it only for a valid cause, so a stack
/// with causal tracing off (or a spontaneous periodic send) produces
/// byte-identical version-1 datagrams; parsers accept both versions
/// unconditionally, which makes stamped and unstamped nodes wire-
/// compatible in either direction.
inline constexpr std::uint8_t protocol_version_stamped = 2;

/// Serializes `msg` with a (version, type) envelope; a valid `cause`
/// selects the stamped version-2 envelope.
[[nodiscard]] std::vector<std::byte> encode(const wire_message& msg,
                                            cause_id cause = {});

/// Serializes `msg` into a buffer recycled from `pool` and seals it into a
/// refcounted payload — the steady-state send path. Byte-for-byte identical
/// to `encode`.
[[nodiscard]] net::shared_payload encode_shared(const wire_message& msg,
                                                net::payload_pool& pool,
                                                cause_id cause = {});

/// Memoizes the encoded bytes of the last message it saw: a periodic
/// re-broadcast of a byte-identical message — the steady-state HELLO
/// anti-entropy, whose entries only change on join/leave — returns the
/// cached refcounted payload instead of re-serializing. A cause-stamped
/// request always re-encodes (the stamp differs per send) and leaves the
/// cache untouched; a changed message replaces it. The cached payload pins
/// one pool buffer while live, released on `invalidate` or destruction.
/// Single-threaded, like the pool it seals into.
class encode_cache {
 public:
  /// Encoded payload for `msg`, from cache when the previous uncached call
  /// encoded an equal message. Bytes are identical to `encode_shared`.
  [[nodiscard]] net::shared_payload get(const wire_message& msg,
                                        net::payload_pool& pool,
                                        cause_id cause = {});

  void invalidate();

  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }

 private:
  wire_message key_;
  net::shared_payload cached_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

/// Parses a datagram; returns nullopt on any malformed, truncated,
/// over-long or wrong-version input. A non-null `cause` receives the
/// version-2 envelope stamp (invalid for version-1 datagrams).
[[nodiscard]] std::optional<wire_message> decode(std::span<const std::byte> bytes,
                                                 cause_id* cause = nullptr);

/// Parses a datagram into `out`, reusing its storage: when `out` already
/// holds the incoming message kind — the steady-state case for a receive
/// scratch fed a stream of ALIVEs — the repeated-field vectors keep their
/// capacity, making the parse allocation-free. Accepts and rejects exactly
/// the same inputs as `decode`; on false, `out` is valid but unspecified.
[[nodiscard]] bool decode_into(wire_message& out, std::span<const std::byte> bytes,
                               cause_id* cause = nullptr);

/// Reads just the (version, type) envelope without decoding the body —
/// cheap enough for per-datagram traffic classification (bench taps).
/// Returns nullopt for truncated, wrong-version or unknown-type input.
[[nodiscard]] std::optional<msg_kind> peek_kind(std::span<const std::byte> bytes);

/// Envelope tag of a decoded message variant.
[[nodiscard]] msg_kind kind_of(const wire_message& msg);

/// Lower-case label of a message kind ("alive", "accuse", ...), for
/// metrics labels and traffic breakdowns.
[[nodiscard]] std::string_view to_string(msg_kind kind);

/// Sender node of any message variant.
[[nodiscard]] node_id sender_of(const wire_message& msg);
/// Sender incarnation of any message variant.
[[nodiscard]] incarnation incarnation_of(const wire_message& msg);

}  // namespace omega::proto
