#include "runtime/event_loop.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <system_error>
#include <utility>

#include "runtime/loop_transport.hpp"

namespace omega::runtime {

loop_stats& loop_stats::operator+=(const loop_stats& o) {
  epoll_waits += o.epoll_waits;
  eventfd_reads += o.eventfd_reads;
  sendmmsg_calls += o.sendmmsg_calls;
  sendto_calls += o.sendto_calls;
  recvmmsg_calls += o.recvmmsg_calls;
  recvfrom_calls += o.recvfrom_calls;
  datagrams_sent += o.datagrams_sent;
  datagrams_received += o.datagrams_received;
  bytes_sent += o.bytes_sent;
  bytes_received += o.bytes_received;
  timers_fired += o.timers_fired;
  tasks_run += o.tasks_run;
  iterations += o.iterations;
  return *this;
}

event_loop::event_loop(options opts)
    : opts_(opts), epoch_(std::chrono::steady_clock::now()) {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    throw std::system_error(errno, std::generic_category(), "epoll_create1");
  }
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    const int err = errno;
    ::close(epoll_fd_);
    throw std::system_error(err, std::generic_category(), "eventfd");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);
  rx_buf_.resize(opts_.batch * rx_slot_bytes);
  rx_addrs_.resize(opts_.batch);
  thread_ = std::thread([this] { loop(); });
}

event_loop::~event_loop() {
  stop();
  ::close(wake_fd_);
  ::close(epoll_fd_);
}

time_point event_loop::now() const {
  const auto elapsed = std::chrono::steady_clock::now() - epoch_;
  return time_point{std::chrono::duration_cast<duration>(elapsed)};
}

timer_id event_loop::schedule_at(time_point when, unique_task fn) {
  timer_id id;
  {
    std::lock_guard lock(mu_);
    id = next_id_++;
    timers_.emplace(when, timer_entry{id, std::move(fn)});
  }
  // The loop recomputes its epoll timeout before every wait, so a timer
  // armed from the loop thread (re-arming heartbeats — the steady state)
  // needs no eventfd kick; only cross-thread arming must interrupt a wait
  // that may already be in flight.
  if (!on_loop_thread()) wake();
  return id;
}

timer_id event_loop::schedule_after(duration after, unique_task fn) {
  if (after < duration{0}) after = duration{0};
  return schedule_at(now() + after, std::move(fn));
}

void event_loop::cancel(timer_id id) {
  std::lock_guard lock(mu_);
  for (auto it = timers_.begin(); it != timers_.end(); ++it) {
    if (it->second.id == id) {
      timers_.erase(it);
      return;
    }
  }
}

void event_loop::post(std::function<void()> fn) {
  {
    std::lock_guard lock(mu_);
    posted_.push_back(std::move(fn));
  }
  if (!on_loop_thread()) wake();  // see schedule_at
}

void event_loop::sync(const std::function<void()>& fn) {
  if (on_loop_thread() || !running()) {
    fn();
    return;
  }
  std::mutex done_mu;
  std::condition_variable done_cv;
  bool done = false;
  post([&] {
    fn();
    std::lock_guard l(done_mu);
    done = true;
    done_cv.notify_all();
  });
  std::unique_lock l(done_mu);
  done_cv.wait(l, [&] { return done; });
}

void event_loop::stop() {
  {
    std::lock_guard lock(mu_);
    if (stopping_) {
      // Already asked to stop; just make sure the thread is joined below.
    }
    stopping_ = true;
  }
  wake();
  if (thread_.joinable()) thread_.join();
  // Run (don't drop) tasks posted while the stop raced in: a `sync` that
  // lost that race is blocked on its closure, and post-join this thread is
  // the loop's single-threaded successor anyway.
  run_posted();
}

bool event_loop::running() const {
  std::lock_guard lock(mu_);
  return !stopping_;
}

loop_stats event_loop::stats_snapshot() {
  loop_stats out;
  sync([&] { out = stats_; });
  return out;
}

std::size_t event_loop::socket_count() {
  std::size_t n = 0;
  sync([&] { n = sockets_.size(); });
  return n;
}

void event_loop::add_socket(int fd, loop_udp_transport* t) {
  sync([&] {
    sockets_.emplace(fd, t);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
  });
}

void event_loop::remove_socket(int fd) {
  sync([&] {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
    sockets_.erase(fd);
  });
}

void event_loop::wake() {
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

void event_loop::run_posted() {
  std::deque<std::function<void()>> run;
  {
    std::lock_guard lock(mu_);
    run.swap(posted_);
  }
  for (auto& fn : run) {
    fn();
    ++stats_.tasks_run;
  }
}

void event_loop::run_due_timers() {
  // Fire everything due within `timer_slack` of this wakeup: co-scheduled
  // services' heartbeat ticks land in one batch (and one send-ring flush)
  // instead of one wakeup each.
  for (;;) {
    unique_task fn;
    {
      std::lock_guard lock(mu_);
      if (timers_.empty()) return;
      auto it = timers_.begin();
      if (it->first > now() + opts_.timer_slack) return;
      fn = std::move(it->second.fn);
      timers_.erase(it);
    }
    fn();
    ++stats_.timers_fired;
  }
}

void event_loop::loop() {
  std::vector<epoll_event> events(64);
  for (;;) {
    int timeout_ms = -1;
    {
      std::lock_guard lock(mu_);
      if (stopping_) break;
      if (!posted_.empty()) {
        timeout_ms = 0;
      } else if (!timers_.empty()) {
        const duration until = timers_.begin()->first - now();
        if (until <= duration{0}) {
          timeout_ms = 0;
        } else {
          // Round up so we never spin a whole millisecond early.
          timeout_ms = static_cast<int>((until.count() + 999) / 1000);
        }
      }
    }
    const int n =
        ::epoll_wait(epoll_fd_, events.data(),
                     static_cast<int>(events.size()), timeout_ms);
    ++stats_.epoll_waits;
    ++stats_.iterations;

    if (n < 0 && errno != EINTR) break;  // epoll fd gone: shutting down

    run_posted();
    run_due_timers();

    for (int i = 0; i < std::max(n, 0); ++i) {
      const int fd = events[static_cast<std::size_t>(i)].data.fd;
      if (fd == wake_fd_) {
        std::uint64_t drained = 0;
        [[maybe_unused]] const ssize_t r =
            ::read(wake_fd_, &drained, sizeof(drained));
        ++stats_.eventfd_reads;
        continue;
      }
      // Look the transport up per event: a posted task or timer above may
      // have torn it down mid-iteration (loop teardown mid-receive).
      auto it = sockets_.find(fd);
      if (it != sockets_.end()) it->second->drain_rx();
    }

    // End-of-tick flush: every datagram enqueued by the timers, tasks and
    // receive handlers of this iteration goes out now, coalesced per
    // socket into sendmmsg batches.
    for (auto& [fd, t] : sockets_) t->flush();
  }
}

loop_pool::loop_pool(std::size_t loops, event_loop::options opts) {
  if (loops == 0) loops = 1;
  loops_.reserve(loops);
  for (std::size_t i = 0; i < loops; ++i) {
    loops_.push_back(std::make_unique<event_loop>(opts));
  }
}

loop_stats loop_pool::total_stats() {
  loop_stats total;
  for (auto& l : loops_) total += l->stats_snapshot();
  return total;
}

void loop_pool::stop_all() {
  for (auto& l : loops_) l->stop();
}

}  // namespace omega::runtime
