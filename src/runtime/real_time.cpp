#include "runtime/real_time.hpp"

#include <utility>
#include <vector>

namespace omega::runtime {

real_time_engine::real_time_engine()
    : epoch_(std::chrono::steady_clock::now()), thread_([this] { loop(); }) {}

real_time_engine::~real_time_engine() { stop(); }

time_point real_time_engine::now() const {
  const auto elapsed = std::chrono::steady_clock::now() - epoch_;
  return time_point{std::chrono::duration_cast<duration>(elapsed)};
}

timer_id real_time_engine::schedule_at(time_point when, unique_task fn) {
  std::lock_guard lock(mu_);
  const timer_id id = next_id_++;
  timers_.emplace(when, entry{when, next_seq_++, id, std::move(fn)});
  cv_.notify_all();
  return id;
}

timer_id real_time_engine::schedule_after(duration after, unique_task fn) {
  if (after < duration{0}) after = duration{0};
  return schedule_at(now() + after, std::move(fn));
}

void real_time_engine::cancel(timer_id id) {
  std::lock_guard lock(mu_);
  for (auto it = timers_.begin(); it != timers_.end(); ++it) {
    if (it->second.id == id) {
      timers_.erase(it);
      break;
    }
  }
}

void real_time_engine::post(std::function<void()> fn) {
  std::lock_guard lock(mu_);
  posted_.push_back(std::move(fn));
  cv_.notify_all();
}

void real_time_engine::drain(duration idle) {
  for (;;) {
    {
      std::unique_lock lock(mu_);
      const bool quiet = posted_.empty() &&
                         (timers_.empty() || timers_.begin()->first > now() + idle);
      if (quiet) return;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

void real_time_engine::stop() {
  {
    std::lock_guard lock(mu_);
    if (stopping_) {
      // Already stopped; just make sure the thread is joined.
    }
    stopping_ = true;
    cv_.notify_all();
  }
  if (thread_.joinable()) thread_.join();
}

void real_time_engine::loop() {
  std::unique_lock lock(mu_);
  while (!stopping_) {
    // Run everything posted.
    while (!posted_.empty()) {
      auto fn = std::move(posted_.front());
      posted_.pop_front();
      lock.unlock();
      fn();
      lock.lock();
    }
    if (stopping_) break;

    if (timers_.empty()) {
      cv_.wait(lock, [this] { return stopping_ || !posted_.empty() || !timers_.empty(); });
      continue;
    }
    const time_point next = timers_.begin()->first;
    if (next > now()) {
      const auto wait = std::chrono::microseconds((next - now()).count());
      cv_.wait_for(lock, wait);
      continue;
    }
    auto it = timers_.begin();
    auto fn = std::move(it->second.fn);
    timers_.erase(it);
    lock.unlock();
    fn();
    lock.lock();
  }
}

}  // namespace omega::runtime
