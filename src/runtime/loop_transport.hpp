// Batched UDP transport for services hosted on a shared `event_loop`.
//
// One non-blocking socket per service instance, registered with the loop's
// epoll set — no receive thread, no per-send syscall. The transport is the
// socket half of the scale-out runtime (DESIGN.md §10):
//
//   * Encode-once all the way down: the `shared_payload` overrides of
//     `net::transport` are implemented natively instead of decaying to the
//     span path. A multicast enqueues one (destination, payload-reference)
//     entry per target on the send ring — the bytes the service encoded
//     once into the loop's pool are never copied again, and the flush
//     writes the whole fan-out with a single sendmmsg(2).
//   * Batched receive: the loop drains readiness with recvmmsg(2) into a
//     reusable buffer array and upcalls the handler per datagram, on the
//     loop thread (which is the service's protocol thread — no cross-
//     thread post, no per-datagram copy).
//   * Honest failure accounting: send errors are classified per errno
//     class, ring overflow under backpressure is counted and the ring
//     depth high watermark kept, and datagrams from senders outside the
//     roster are counted (and traced through an optional obs::sink)
//     instead of vanishing.
//
// In per-datagram mode (`event_loop::options::batching == false`) the same
// transport degrades to an immediate sendto(2) per datagram and single
// recvfrom(2) reads — the measured baseline of bench/fig14_live.
//
// Threading: every method except the constructor/destructor must run on
// the loop thread (services live there already). Construction/destruction
// may happen on any thread; they synchronize with the loop internally.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/ids.hpp"
#include "net/transport.hpp"
#include "obs/sink.hpp"
#include "runtime/endpoint.hpp"
#include "runtime/event_loop.hpp"

namespace omega::runtime {

class loop_udp_transport final : public net::transport {
 public:
  /// Binds the socket at `roster.at(self)` (port 0 = ephemeral; read the
  /// result back with `bound_port`). Throws std::system_error on
  /// socket/bind failure.
  loop_udp_transport(event_loop& loop, node_id self, udp_roster roster);
  ~loop_udp_transport() override;

  loop_udp_transport(const loop_udp_transport&) = delete;
  loop_udp_transport& operator=(const loop_udp_transport&) = delete;

  // ---- net::transport ------------------------------------------------------

  void send(node_id dst, std::span<const std::byte> payload) override;
  /// Zero-copy sends: the payload reference rides the send ring until the
  /// flush syscall; fan-out shares one buffer across every destination.
  void send(node_id dst, net::shared_payload payload) override;
  void multicast(std::span<const node_id> dsts,
                 net::shared_payload payload) override;
  /// Raw-span multicast still copies only once (into a pooled payload),
  /// then fans out by reference.
  void multicast(std::span<const node_id> dsts,
                 std::span<const std::byte> payload) override;

  [[nodiscard]] net::payload_pool& pool() override { return loop_.pool(); }
  [[nodiscard]] node_id local_node() const override { return self_; }
  void set_receive_handler(net::receive_handler handler) override;

  // ---- runtime surface -----------------------------------------------------

  /// Local port actually bound (useful when the roster used port 0).
  [[nodiscard]] std::uint16_t bound_port() const { return bound_port_; }

  /// Replaces the peer address book (loop thread, or before any traffic).
  /// Lets a deployment bind every instance on port 0 first and distribute
  /// the bound ports afterwards.
  void set_roster(udp_roster roster);

  /// Optional trace sink for drop events (rx from unknown peers); must
  /// outlive the transport. Loop thread only.
  void set_sink(obs::sink* sink) { sink_ = sink; }

  /// I/O counters (loop thread; a stopped loop may read directly).
  [[nodiscard]] const transport_net_stats& stats() const { return stats_; }

  /// Entries currently waiting on the send ring.
  [[nodiscard]] std::size_t queue_depth() const { return queue_.size(); }

  /// The loop this socket lives on.
  [[nodiscard]] event_loop& loop() { return loop_; }

 private:
  friend class event_loop;

  struct pending {
    sockaddr_in to;
    net::shared_payload payload;
  };

  /// Max entries the send ring holds before an inline flush; if the socket
  /// is backpressured beyond it, further datagrams drop (UDP semantics,
  /// but counted).
  static constexpr std::size_t max_queue = 4096;

  void enqueue(const sockaddr_in& to, net::shared_payload payload);
  void send_now(const sockaddr_in& to, std::span<const std::byte> bytes);
  /// Flushes the send ring with sendmmsg batches; called by the loop at
  /// the end of every iteration (and inline when the ring fills).
  void flush();
  /// Drains the readable socket; called by the loop on EPOLLIN.
  void drain_rx();
  void deliver(const sockaddr_in& from, std::span<const std::byte> bytes,
               bool truncated);
  [[nodiscard]] node_id classify_sender(std::uint32_t addr,
                                        std::uint16_t port) const;

  event_loop& loop_;
  node_id self_;
  udp_roster roster_;
  std::unordered_map<std::uint64_t, node_id> peers_;
  std::unordered_map<node_id, sockaddr_in> peer_addrs_;
  int fd_ = -1;
  std::uint16_t bound_port_ = 0;

  net::receive_handler handler_;
  obs::sink* sink_ = nullptr;
  transport_net_stats stats_;

  std::vector<pending> queue_;
};

}  // namespace omega::runtime
