// Shared epoll driver: one loop thread hosting many service instances.
//
// The original real-socket runtime paired every `udp_transport` with its own
// blocking-recvfrom thread and every service with its own
// `real_time_engine` loop thread — two threads per service instance, which
// caps "hundreds of services on one box" long before the protocol does. An
// `event_loop` collapses both onto one epoll-driven thread: it implements
// the `clock_source`/`timer_service` pair the protocol stack is written
// against *and* owns the UDP sockets of every `loop_udp_transport`
// registered with it, so N services cost one thread, one epoll fd and one
// timer wheel instead of 2N threads.
//
// Syscall batching (DESIGN.md §10): in batched mode (the default) outbound
// datagrams are not written with one sendto(2) each. Every transport keeps
// a send ring of (destination, refcounted payload) entries; the loop
// flushes each ring once per iteration with a single sendmmsg(2), so a
// multicast fan-out — already encoded exactly once into a pooled
// `net::shared_payload` by the service layer — crosses the syscall boundary
// as one encode + one syscall, zero per-destination copies. Inbound,
// readiness is level-triggered and each ready socket is drained with
// recvmmsg(2). Timers due within `timer_slack` of a wakeup run together,
// which keeps the heartbeat ticks of co-scheduled services clustered and
// their datagrams arriving in recvmmsg-sized bursts.
//
// Threading: everything protocol-visible (timers, receive handlers, sends,
// the payload pool) runs on the loop thread, exactly like one
// `real_time_engine` — services sharing a loop share its thread and are
// never concurrent with each other. `post`/`sync` are the only
// thread-safe entry points.
#pragma once

#include <netinet/in.h>

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/executor.hpp"
#include "common/time.hpp"
#include "net/shared_payload.hpp"

namespace omega::runtime {

class loop_udp_transport;

/// Loop-wide I/O accounting, owned by the loop thread (read it via
/// `stats_snapshot`). Syscall counters cover every network-related syscall
/// the loop issues, so `syscalls() / datagrams moved` is an honest
/// syscalls-per-datagram figure for the fig14 bench.
struct loop_stats {
  std::uint64_t epoll_waits = 0;
  std::uint64_t eventfd_reads = 0;
  std::uint64_t sendmmsg_calls = 0;
  std::uint64_t sendto_calls = 0;
  std::uint64_t recvmmsg_calls = 0;
  std::uint64_t recvfrom_calls = 0;
  std::uint64_t datagrams_sent = 0;
  std::uint64_t datagrams_received = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t timers_fired = 0;
  std::uint64_t tasks_run = 0;
  std::uint64_t iterations = 0;

  [[nodiscard]] std::uint64_t syscalls() const {
    return epoll_waits + eventfd_reads + sendmmsg_calls + sendto_calls +
           recvmmsg_calls + recvfrom_calls;
  }

  loop_stats& operator+=(const loop_stats& o);
};

class event_loop final : public clock_source, public timer_service {
 public:
  struct options {
    /// Batched syscalls (sendmmsg/recvmmsg + per-tick send rings). Off =
    /// the per-datagram baseline: every send is an immediate sendto(2),
    /// every receive a single recvfrom(2) — today's one-syscall-per-
    /// datagram model, kept as the measurable control in fig14_live.
    bool batching = true;
    /// Max datagrams per sendmmsg/recvmmsg call (and per rx buffer array).
    std::size_t batch = 64;
    /// Timers due within this much of a wakeup fire on it. Clusters the
    /// heartbeat ticks of services sharing the loop so their fan-outs
    /// coalesce; sub-millisecond, far inside any FD safety margin.
    duration timer_slack = usec(500);
  };

  explicit event_loop(options opts);
  event_loop() : event_loop(options{}) {}
  ~event_loop() override;

  event_loop(const event_loop&) = delete;
  event_loop& operator=(const event_loop&) = delete;

  /// Monotonic time since loop start (every service on the loop shares
  /// this timeline, like siblings on one `real_time_engine`).
  [[nodiscard]] time_point now() const override;

  timer_id schedule_at(time_point when, unique_task fn) override;
  timer_id schedule_after(duration after, unique_task fn) override;
  void cancel(timer_id id) override;

  /// Runs `fn` on the loop thread as soon as possible. Thread-safe.
  void post(std::function<void()> fn);

  /// Runs `fn` on the loop thread and blocks until it returned. Runs
  /// inline when already on the loop thread (or after `stop`), so it is
  /// safe from receive handlers and timers.
  void sync(const std::function<void()>& fn);

  /// Stops and joins the loop thread; pending timers/tasks are dropped.
  /// Registered transports stay usable for teardown (their destructors
  /// then mutate loop state directly, single-threaded).
  void stop();

  [[nodiscard]] bool running() const;
  [[nodiscard]] bool on_loop_thread() const {
    return std::this_thread::get_id() == thread_.get_id();
  }

  [[nodiscard]] const options& opts() const { return opts_; }

  /// Shared payload pool of every transport on this loop (loop thread
  /// only, like the encode paths that feed it).
  [[nodiscard]] net::payload_pool& pool() { return pool_; }

  /// Coherent copy of the I/O counters (syncs onto the loop thread while
  /// it runs).
  [[nodiscard]] loop_stats stats_snapshot();

  /// Transports currently registered (diagnostics).
  [[nodiscard]] std::size_t socket_count();

 private:
  friend class loop_udp_transport;

  /// Socket registration, called by loop_udp_transport construction /
  /// destruction (syncs onto the loop thread while the loop runs).
  void add_socket(int fd, loop_udp_transport* t);
  void remove_socket(int fd);

  void loop();
  void run_posted();
  void run_due_timers();
  void wake();

  struct timer_entry {
    timer_id id;
    unique_task fn;
  };

  options opts_;
  std::chrono::steady_clock::time_point epoch_;

  int epoll_fd_ = -1;
  int wake_fd_ = -1;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::multimap<time_point, timer_entry> timers_;
  std::deque<std::function<void()>> posted_;
  timer_id next_id_ = 1;
  bool stopping_ = false;

  // Loop-thread state (no locking): registered sockets, shared pool, and
  // the recvmmsg scratch shared by every transport on the loop (drains are
  // serial, so one batch x slot buffer array serves all sockets).
  static constexpr std::size_t rx_slot_bytes = 16384;
  std::unordered_map<int, loop_udp_transport*> sockets_;
  net::payload_pool pool_{1024};
  loop_stats stats_;
  std::vector<std::byte> rx_buf_;
  std::vector<sockaddr_in> rx_addrs_;

  std::thread thread_;
};

/// A small shard of event loops: services are assigned round-robin, which
/// is how the fig14 bench (and any deployment hosting hundreds of
/// instances) spreads protocol work over a few cores without giving every
/// service its own thread.
class loop_pool {
 public:
  explicit loop_pool(std::size_t loops,
                     event_loop::options opts = event_loop::options{});

  [[nodiscard]] std::size_t size() const { return loops_.size(); }
  /// Loop for shard `i` (round-robin: `i % size()`).
  [[nodiscard]] event_loop& at(std::size_t i) {
    return *loops_[i % loops_.size()];
  }

  /// Sum of every loop's counters.
  [[nodiscard]] loop_stats total_stats();

  void stop_all();

 private:
  std::vector<std::unique_ptr<event_loop>> loops_;
};

}  // namespace omega::runtime
