#include "runtime/loop_transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <system_error>
#include <utility>

#include "obs/trace.hpp"

namespace omega::runtime {

namespace {

sockaddr_in to_sockaddr(const udp_endpoint& ep) {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(ep.port);
  if (::inet_pton(AF_INET, ep.host.c_str(), &sa.sin_addr) != 1) {
    throw std::system_error(EINVAL, std::generic_category(),
                            "loop_udp_transport: bad host " + ep.host);
  }
  return sa;
}

}  // namespace

loop_udp_transport::loop_udp_transport(event_loop& loop, node_id self,
                                       udp_roster roster)
    : loop_(loop), self_(self) {
  auto it = roster.find(self_);
  if (it == roster.end()) {
    throw std::system_error(EINVAL, std::generic_category(),
                            "loop_udp_transport: self not in roster");
  }
  fd_ = ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    throw std::system_error(errno, std::generic_category(), "socket");
  }
  sockaddr_in self_addr = to_sockaddr(it->second);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&self_addr),
             sizeof(self_addr)) != 0) {
    const int err = errno;
    ::close(fd_);
    throw std::system_error(err, std::generic_category(), "bind");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  bound_port_ = ntohs(bound.sin_port);

  queue_.reserve(loop_.opts().batch);
  set_roster(std::move(roster));
  loop_.add_socket(fd_, this);
}

loop_udp_transport::~loop_udp_transport() {
  loop_.remove_socket(fd_);  // syncs onto the loop: no drain can be running
  ::close(fd_);
}

void loop_udp_transport::set_roster(udp_roster roster) {
  roster_ = std::move(roster);
  peers_.clear();
  peer_addrs_.clear();
  for (const auto& [node, ep] : roster_) {
    const sockaddr_in sa = to_sockaddr(ep);
    peers_.emplace(peer_key(sa.sin_addr.s_addr, ntohs(sa.sin_port)), node);
    peer_addrs_.emplace(node, sa);
  }
}

void loop_udp_transport::set_receive_handler(net::receive_handler handler) {
  handler_ = std::move(handler);
}

node_id loop_udp_transport::classify_sender(std::uint32_t addr,
                                            std::uint16_t port) const {
  auto it = peers_.find(peer_key(addr, port));
  return it != peers_.end() ? it->second : node_id::invalid();
}

// ---- send paths -------------------------------------------------------------

void loop_udp_transport::send(node_id dst, std::span<const std::byte> payload) {
  auto it = peer_addrs_.find(dst);
  if (it == peer_addrs_.end()) return;  // unknown destination: drop (UDP-like)
  if (!loop_.opts().batching) {
    send_now(it->second, payload);
    return;
  }
  // The ring must own the bytes until the flush syscall: one copy into the
  // pool (recycled capacity, no allocation in steady state).
  enqueue(it->second, pool().copy(payload));
}

void loop_udp_transport::send(node_id dst, net::shared_payload payload) {
  auto it = peer_addrs_.find(dst);
  if (it == peer_addrs_.end()) return;
  if (!loop_.opts().batching) {
    send_now(it->second, payload.bytes());
    return;
  }
  enqueue(it->second, std::move(payload));  // zero-copy: reference rides
}

void loop_udp_transport::multicast(std::span<const node_id> dsts,
                                   net::shared_payload payload) {
  for (node_id dst : dsts) send(dst, payload);
}

void loop_udp_transport::multicast(std::span<const node_id> dsts,
                                   std::span<const std::byte> payload) {
  if (dsts.empty()) return;
  if (!loop_.opts().batching) {
    for (node_id dst : dsts) send(dst, payload);
    return;
  }
  // Copy once into the pool, then fan out by reference.
  multicast(dsts, pool().copy(payload));
}

void loop_udp_transport::send_now(const sockaddr_in& to,
                                  std::span<const std::byte> bytes) {
  ++loop_.stats_.sendto_calls;
  const ssize_t n =
      ::sendto(fd_, bytes.data(), bytes.size(), 0,
               reinterpret_cast<const sockaddr*>(&to), sizeof(to));
  if (n < 0) {
    stats_.count_send_errno(errno);
    return;
  }
  ++stats_.datagrams_sent;
  stats_.bytes_sent += bytes.size();
  ++loop_.stats_.datagrams_sent;
  loop_.stats_.bytes_sent += bytes.size();
}

void loop_udp_transport::enqueue(const sockaddr_in& to,
                                 net::shared_payload payload) {
  if (queue_.size() >= max_queue) {
    flush();
    if (queue_.size() >= max_queue) {
      // Still backpressured after a flush attempt: UDP drops, but counted.
      ++stats_.send_queue_drops;
      return;
    }
  }
  queue_.push_back(pending{to, std::move(payload)});
  if (queue_.size() > stats_.send_queue_hwm) {
    stats_.send_queue_hwm = queue_.size();
  }
}

void loop_udp_transport::flush() {
  if (queue_.empty()) return;
  const std::size_t batch = std::min<std::size_t>(loop_.opts().batch, 64);
  std::size_t done = 0;
  while (done < queue_.size()) {
    const std::size_t n = std::min(batch, queue_.size() - done);
    mmsghdr msgs[64];
    iovec iovs[64];
    for (std::size_t i = 0; i < n; ++i) {
      pending& p = queue_[done + i];
      const std::span<const std::byte> bytes = p.payload.bytes();
      iovs[i].iov_base = const_cast<std::byte*>(bytes.data());
      iovs[i].iov_len = bytes.size();
      std::memset(&msgs[i], 0, sizeof(msgs[i]));
      msgs[i].msg_hdr.msg_name = &p.to;
      msgs[i].msg_hdr.msg_namelen = sizeof(p.to);
      msgs[i].msg_hdr.msg_iov = &iovs[i];
      msgs[i].msg_hdr.msg_iovlen = 1;
    }
    ++loop_.stats_.sendmmsg_calls;
    const int sent = ::sendmmsg(fd_, msgs, static_cast<unsigned>(n), 0);
    if (sent < 0) {
      const int err = errno;
      stats_.count_send_errno(err);
      if (err == EAGAIN || err == EWOULDBLOCK) {
        // Socket buffer full: keep the remainder queued for the next tick.
        break;
      }
      // A poison head entry (e.g. EMSGSIZE): count it, drop it, carry on.
      queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(done));
      continue;
    }
    for (int i = 0; i < sent; ++i) {
      ++stats_.datagrams_sent;
      stats_.bytes_sent += iovs[i].iov_len;
      loop_.stats_.bytes_sent += iovs[i].iov_len;
    }
    loop_.stats_.datagrams_sent += static_cast<std::uint64_t>(sent);
    done += static_cast<std::size_t>(sent);
    // On a partial batch the failing message's errno surfaces on the next
    // sendmmsg call, which the loop issues immediately.
  }
  queue_.erase(queue_.begin(), queue_.begin() + static_cast<std::ptrdiff_t>(done));
}

// ---- receive path -----------------------------------------------------------

void loop_udp_transport::drain_rx() {
  const bool batching = loop_.opts().batching;
  if (!batching) {
    // Per-datagram baseline: one recvfrom(2) per datagram, until EAGAIN.
    for (;;) {
      sockaddr_in from{};
      socklen_t from_len = sizeof(from);
      ++loop_.stats_.recvfrom_calls;
      const ssize_t n = ::recvfrom(fd_, loop_.rx_buf_.data(),
                                   event_loop::rx_slot_bytes, 0,
                                   reinterpret_cast<sockaddr*>(&from),
                                   &from_len);
      if (n < 0) return;  // EAGAIN: drained (or socket gone)
      deliver(from, std::span<const std::byte>(loop_.rx_buf_.data(),
                                               static_cast<std::size_t>(n)),
              false);
    }
  }
  const std::size_t batch = std::min<std::size_t>(loop_.opts().batch, 64);
  for (;;) {
    mmsghdr msgs[64];
    iovec iovs[64];
    const std::size_t n = batch;
    for (std::size_t i = 0; i < n; ++i) {
      iovs[i].iov_base = loop_.rx_buf_.data() + i * event_loop::rx_slot_bytes;
      iovs[i].iov_len = event_loop::rx_slot_bytes;
      std::memset(&msgs[i], 0, sizeof(msgs[i]));
      msgs[i].msg_hdr.msg_name = &loop_.rx_addrs_[i];
      msgs[i].msg_hdr.msg_namelen = sizeof(sockaddr_in);
      msgs[i].msg_hdr.msg_iov = &iovs[i];
      msgs[i].msg_hdr.msg_iovlen = 1;
    }
    ++loop_.stats_.recvmmsg_calls;
    const int got = ::recvmmsg(fd_, msgs, static_cast<unsigned>(n),
                               MSG_DONTWAIT, nullptr);
    if (got <= 0) return;  // EAGAIN: drained
    for (int i = 0; i < got; ++i) {
      const bool truncated = (msgs[i].msg_hdr.msg_flags & MSG_TRUNC) != 0;
      deliver(loop_.rx_addrs_[static_cast<std::size_t>(i)],
              std::span<const std::byte>(
                  static_cast<const std::byte*>(iovs[i].iov_base),
                  msgs[i].msg_len),
              truncated);
    }
    if (static_cast<std::size_t>(got) < n) return;  // short batch: drained
  }
}

void loop_udp_transport::deliver(const sockaddr_in& from,
                                 std::span<const std::byte> bytes,
                                 bool truncated) {
  ++stats_.datagrams_received;
  stats_.bytes_received += bytes.size();
  ++loop_.stats_.datagrams_received;
  loop_.stats_.bytes_received += bytes.size();
  if (truncated) {
    ++stats_.rx_truncated;
    return;
  }
  const node_id sender =
      classify_sender(from.sin_addr.s_addr, ntohs(from.sin_port));
  if (!sender.valid()) {
    // Not a roster peer: drop, but leave a trail (the transport-level twin
    // of the service's unknown-group accounting).
    ++stats_.rx_unknown_peer;
    if (sink_ != nullptr) {
      obs::trace_event ev;
      ev.kind = obs::event_kind::unknown_peer_drop;
      ev.at = loop_.now();
      ev.node = self_;
      ev.value = static_cast<double>(bytes.size());
      sink_->record(ev);
    }
    return;
  }
  if (handler_) handler_(net::datagram{sender, bytes});
}

}  // namespace omega::runtime
