#include "runtime/udp_transport.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <system_error>
#include <utility>

namespace omega::runtime {

namespace {

sockaddr_in to_sockaddr(const udp_endpoint& ep) {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(ep.port);
  if (::inet_pton(AF_INET, ep.host.c_str(), &sa.sin_addr) != 1) {
    throw std::system_error(EINVAL, std::generic_category(),
                            "udp_transport: bad host " + ep.host);
  }
  return sa;
}

}  // namespace

udp_transport::udp_transport(real_time_engine& engine, node_id self,
                             udp_roster roster)
    : engine_(engine), self_(self), roster_(std::move(roster)) {
  auto it = roster_.find(self_);
  if (it == roster_.end()) {
    throw std::system_error(EINVAL, std::generic_category(),
                            "udp_transport: self not in roster");
  }
  fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd_ < 0) {
    throw std::system_error(errno, std::generic_category(), "socket");
  }
  sockaddr_in self_addr = to_sockaddr(it->second);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&self_addr), sizeof(self_addr)) != 0) {
    const int err = errno;
    ::close(fd_);
    throw std::system_error(err, std::generic_category(), "bind");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  bound_port_ = ntohs(bound.sin_port);

  for (const auto& [node, ep] : roster_) {
    const sockaddr_in sa = to_sockaddr(ep);
    peers_.emplace(peer_key(sa.sin_addr.s_addr, ntohs(sa.sin_port)), node);
  }
  rx_thread_ = std::thread([this] { receive_loop(); });
}

udp_transport::~udp_transport() {
  stopping_.store(true);
  ::shutdown(fd_, SHUT_RDWR);
  ::close(fd_);
  if (rx_thread_.joinable()) rx_thread_.join();
}

void udp_transport::send(node_id dst, std::span<const std::byte> payload) {
  auto it = roster_.find(dst);
  if (it == roster_.end()) return;  // unknown destination: drop (UDP-like)
  const sockaddr_in sa = to_sockaddr(it->second);
  // Fire-and-forget: a failure is loss to the protocol either way, but it
  // is *counted* — a saturated host (EAGAIN/ENOBUFS) must be tellable
  // apart from a lossy network when reading the metrics.
  const ssize_t n = ::sendto(fd_, payload.data(), payload.size(), 0,
                             reinterpret_cast<const sockaddr*>(&sa), sizeof(sa));
  if (n < 0) {
    const int err = errno;
    if (err == EAGAIN || err == EWOULDBLOCK) {
      send_err_eagain_.fetch_add(1, std::memory_order_relaxed);
    } else if (err == ENOBUFS) {
      send_err_enobufs_.fetch_add(1, std::memory_order_relaxed);
    } else {
      send_err_other_.fetch_add(1, std::memory_order_relaxed);
    }
    return;
  }
  datagrams_sent_.fetch_add(1, std::memory_order_relaxed);
  bytes_sent_.fetch_add(payload.size(), std::memory_order_relaxed);
}

void udp_transport::set_receive_handler(net::receive_handler handler) {
  handler_ = std::move(handler);
}

transport_net_stats udp_transport::stats() const {
  transport_net_stats s;
  s.datagrams_sent = datagrams_sent_.load(std::memory_order_relaxed);
  s.bytes_sent = bytes_sent_.load(std::memory_order_relaxed);
  s.datagrams_received = datagrams_received_.load(std::memory_order_relaxed);
  s.bytes_received = bytes_received_.load(std::memory_order_relaxed);
  s.send_err_eagain = send_err_eagain_.load(std::memory_order_relaxed);
  s.send_err_enobufs = send_err_enobufs_.load(std::memory_order_relaxed);
  s.send_err_other = send_err_other_.load(std::memory_order_relaxed);
  s.rx_unknown_peer = rx_unknown_peer_.load(std::memory_order_relaxed);
  return s;
}

node_id udp_transport::classify_sender(std::uint32_t addr, std::uint16_t port) const {
  auto it = peers_.find(peer_key(addr, port));
  return it != peers_.end() ? it->second : node_id::invalid();
}

void udp_transport::receive_loop() {
  std::vector<std::byte> buf(64 * 1024);
  while (!stopping_.load()) {
    sockaddr_in from{};
    socklen_t from_len = sizeof(from);
    const ssize_t n = ::recvfrom(fd_, buf.data(), buf.size(), 0,
                                 reinterpret_cast<sockaddr*>(&from), &from_len);
    if (n < 0) {
      if (stopping_.load()) break;
      if (errno == EINTR) continue;
      break;  // socket closed
    }
    datagrams_received_.fetch_add(1, std::memory_order_relaxed);
    bytes_received_.fetch_add(static_cast<std::uint64_t>(n),
                              std::memory_order_relaxed);
    const node_id sender = classify_sender(from.sin_addr.s_addr, ntohs(from.sin_port));
    if (!sender.valid()) {
      // Not a roster peer: drop, counted and (when a sink is attached)
      // traced on the loop thread the sink lives on.
      rx_unknown_peer_.fetch_add(1, std::memory_order_relaxed);
      if (sink_ != nullptr) {
        const double bytes = static_cast<double>(n);
        engine_.post([this, bytes] {
          obs::trace_event ev;
          ev.kind = obs::event_kind::unknown_peer_drop;
          ev.at = engine_.now();
          ev.node = self_;
          ev.value = bytes;
          sink_->record(ev);
        });
      }
      continue;
    }
    std::vector<std::byte> payload(buf.begin(), buf.begin() + n);
    engine_.post([this, sender, data = std::move(payload)] {
      if (handler_) handler_(net::datagram{sender, data});
    });
  }
}

}  // namespace omega::runtime
