// UDP transport: the original one-thread-per-socket implementation of
// `net::transport` over real sockets.
//
// Mirrors the paper's service, which ran over UDP on a LAN. Each node binds
// one UDP socket; the cluster roster maps node ids to (host, port)
// endpoints. A receive thread reads datagrams and posts them to the
// real-time engine's loop thread, so all protocol code stays
// single-threaded. Sends go straight out with sendto(2) — fire-and-forget,
// exactly the semantics the protocol expects.
//
// This is the per-datagram model: one rx thread and one syscall per
// datagram per direction. It remains the right tool for a handful of
// instances (and is the measured baseline the batched runtime is compared
// against); deployments hosting many services per box use the shared
// `event_loop` + `loop_udp_transport` driver instead (DESIGN.md §10).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/ids.hpp"
#include "net/transport.hpp"
#include "obs/sink.hpp"
#include "runtime/endpoint.hpp"
#include "runtime/real_time.hpp"

namespace omega::runtime {

class udp_transport final : public net::transport {
 public:
  /// Binds the socket at `roster.at(self)`. Throws std::system_error on
  /// socket/bind failure.
  udp_transport(real_time_engine& engine, node_id self, udp_roster roster);
  ~udp_transport() override;

  udp_transport(const udp_transport&) = delete;
  udp_transport& operator=(const udp_transport&) = delete;

  void send(node_id dst, std::span<const std::byte> payload) override;
  // The span overload above would otherwise hide the base's shared_payload
  // send/multicast (which forward here — right for real sockets, where the
  // kernel copies the datagram immediately).
  using net::transport::send;
  using net::transport::multicast;
  [[nodiscard]] node_id local_node() const override { return self_; }
  void set_receive_handler(net::receive_handler handler) override;

  /// Local port actually bound (useful when the roster used port 0).
  [[nodiscard]] std::uint16_t bound_port() const { return bound_port_; }

  /// Optional trace sink for drop events; recorded on the engine's loop
  /// thread. Must outlive the transport. Set before traffic flows.
  void set_sink(obs::sink* sink) { sink_ = sink; }

  /// Coherent snapshot of the I/O and error counters (thread-safe; sends
  /// and receives race the reader by design).
  [[nodiscard]] transport_net_stats stats() const;

 private:
  void receive_loop();
  [[nodiscard]] node_id classify_sender(std::uint32_t addr, std::uint16_t port) const;

  real_time_engine& engine_;
  node_id self_;
  udp_roster roster_;
  int fd_ = -1;
  std::uint16_t bound_port_ = 0;
  // (ipv4 addr, port) -> node, for classifying inbound datagrams.
  std::unordered_map<std::uint64_t, node_id> peers_;
  net::receive_handler handler_;  // touched only on the engine loop thread
  obs::sink* sink_ = nullptr;     // ditto
  std::atomic<bool> stopping_{false};
  std::thread rx_thread_;

  // Sends run on caller threads, receives on the rx thread: counters are
  // atomics, snapshotted into a plain transport_net_stats by `stats()`.
  std::atomic<std::uint64_t> datagrams_sent_{0};
  std::atomic<std::uint64_t> bytes_sent_{0};
  std::atomic<std::uint64_t> datagrams_received_{0};
  std::atomic<std::uint64_t> bytes_received_{0};
  std::atomic<std::uint64_t> send_err_eagain_{0};
  std::atomic<std::uint64_t> send_err_enobufs_{0};
  std::atomic<std::uint64_t> send_err_other_{0};
  std::atomic<std::uint64_t> rx_unknown_peer_{0};
};

}  // namespace omega::runtime
