// UDP transport: the deployment-side implementation of `net::transport`.
//
// Mirrors the paper's service, which ran over UDP on a LAN. Each node binds
// one UDP socket; the cluster roster maps node ids to (host, port)
// endpoints. A receive thread reads datagrams and posts them to the
// real-time engine's loop thread, so all protocol code stays
// single-threaded. Sends go straight out with sendto(2) — fire-and-forget,
// exactly the semantics the protocol expects.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/ids.hpp"
#include "net/transport.hpp"
#include "runtime/real_time.hpp"

namespace omega::runtime {

struct udp_endpoint {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

using udp_roster = std::unordered_map<node_id, udp_endpoint>;

class udp_transport final : public net::transport {
 public:
  /// Binds the socket at `roster.at(self)`. Throws std::system_error on
  /// socket/bind failure.
  udp_transport(real_time_engine& engine, node_id self, udp_roster roster);
  ~udp_transport() override;

  udp_transport(const udp_transport&) = delete;
  udp_transport& operator=(const udp_transport&) = delete;

  void send(node_id dst, std::span<const std::byte> payload) override;
  // The span overload above would otherwise hide the base's shared_payload
  // send/multicast (which forward here — right for real sockets, where the
  // kernel copies the datagram immediately).
  using net::transport::send;
  using net::transport::multicast;
  [[nodiscard]] node_id local_node() const override { return self_; }
  void set_receive_handler(net::receive_handler handler) override;

  /// Local port actually bound (useful when the roster used port 0).
  [[nodiscard]] std::uint16_t bound_port() const { return bound_port_; }

 private:
  void receive_loop();
  [[nodiscard]] node_id classify_sender(std::uint32_t addr, std::uint16_t port) const;

  real_time_engine& engine_;
  node_id self_;
  udp_roster roster_;
  int fd_ = -1;
  std::uint16_t bound_port_ = 0;
  // (ipv4 addr, port) -> node, for classifying inbound datagrams.
  std::unordered_map<std::uint64_t, node_id> peers_;
  net::receive_handler handler_;  // touched only on the engine loop thread
  std::atomic<bool> stopping_{false};
  std::thread rx_thread_;
};

}  // namespace omega::runtime
