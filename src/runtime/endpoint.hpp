// Shared address plumbing of the real-socket runtime: roster endpoints,
// sockaddr conversion, the (addr, port) -> node classification key, and the
// per-transport I/O error accounting both UDP transports export through the
// observability registry (obs/runtime_export.hpp).
#pragma once

#include <netinet/in.h>

#include <cerrno>
#include <cstdint>
#include <string>
#include <unordered_map>

#include "common/ids.hpp"

namespace omega::runtime {

struct udp_endpoint {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

/// Cluster address book: node id -> UDP endpoint, one entry per
/// workstation (the per-cluster installation config of the paper's
/// deployment).
using udp_roster = std::unordered_map<node_id, udp_endpoint>;

/// Classification key for inbound datagrams.
[[nodiscard]] inline std::uint64_t peer_key(std::uint32_t addr,
                                            std::uint16_t port) {
  return (static_cast<std::uint64_t>(addr) << 16) | port;
}

/// Per-transport datagram and error accounting. Send failures used to be
/// void-cast away at the socket boundary — indistinguishable from network
/// loss even when the box itself was the bottleneck. Now every failed
/// write is classified (EAGAIN = socket buffer full, ENOBUFS = kernel out
/// of buffer space, other = everything else) and queue pressure on the
/// batched path is surfaced, so a saturated host is visible in /metrics
/// instead of masquerading as a lossy LAN.
struct transport_net_stats {
  std::uint64_t datagrams_sent = 0;
  std::uint64_t datagrams_received = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t send_err_eagain = 0;
  std::uint64_t send_err_enobufs = 0;
  std::uint64_t send_err_other = 0;
  /// Inbound datagrams from an (addr, port) not in the roster, dropped
  /// after counting (mirrors service_stats::dropped_unknown_group one
  /// layer down).
  std::uint64_t rx_unknown_peer = 0;
  /// Datagrams truncated by the receive buffer (over-long input; the wire
  /// format caps fields well below it, so this indicates junk traffic).
  std::uint64_t rx_truncated = 0;
  /// Datagrams dropped because the bounded send ring was full while the
  /// socket was backpressured.
  std::uint64_t send_queue_drops = 0;
  /// High watermark of the send ring depth (backpressure gauge).
  std::uint64_t send_queue_hwm = 0;

  [[nodiscard]] std::uint64_t send_errors() const {
    return send_err_eagain + send_err_enobufs + send_err_other;
  }

  void count_send_errno(int err) {
    if (err == EAGAIN || err == EWOULDBLOCK) {
      ++send_err_eagain;
    } else if (err == ENOBUFS) {
      ++send_err_enobufs;
    } else {
      ++send_err_other;
    }
  }
};

}  // namespace omega::runtime
