// Real-time substrate: the deployment-side implementation of the
// clock/timer interfaces the protocol stack is written against.
//
// A single event-loop thread owns all protocol state (services are not
// thread-safe by design — same as running them on the simulator). Other
// threads hand work to the loop with `post`; the UDP receive thread uses
// exactly that to deliver datagrams. Timers are executed on the loop
// thread in deadline order.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <thread>

#include "common/executor.hpp"
#include "common/time.hpp"

namespace omega::runtime {

/// Raw monotonic wall clock in microseconds (std::chrono::steady_clock,
/// no per-engine epoch). Engines' `now()` timelines each start at their
/// own construction instant and are NOT comparable across engines; this
/// is, for all engines and threads of one host. Deployments install it as
/// the observability sink's wall-clock source (sink::set_wall_clock) so
/// trace events carry the dual timestamp the causal DAG's cross-node
/// skew check needs.
[[nodiscard]] inline std::int64_t monotonic_wall_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

class real_time_engine final : public clock_source, public timer_service {
 public:
  real_time_engine();
  ~real_time_engine() override;

  real_time_engine(const real_time_engine&) = delete;
  real_time_engine& operator=(const real_time_engine&) = delete;

  /// Monotonic time since engine start, on the service's virtual timeline.
  [[nodiscard]] time_point now() const override;

  timer_id schedule_at(time_point when, unique_task fn) override;
  timer_id schedule_after(duration after, unique_task fn) override;
  void cancel(timer_id id) override;

  /// Runs `fn` on the loop thread as soon as possible. Thread-safe.
  void post(std::function<void()> fn);

  /// Blocks until the queue is quiescent for `idle` (test helper).
  void drain(duration idle);

  /// Stops the loop thread; pending work is dropped.
  void stop();

 private:
  struct entry {
    time_point when;
    std::uint64_t seq;
    timer_id id;
    unique_task fn;
    bool operator<(const entry& other) const {
      if (when != other.when) return when < other.when;
      return seq < other.seq;
    }
  };

  void loop();

  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::multimap<time_point, entry> timers_;
  std::deque<std::function<void()>> posted_;
  timer_id next_id_ = 1;
  std::uint64_t next_seq_ = 1;
  bool stopping_ = false;
  std::thread thread_;
};

}  // namespace omega::runtime
