// S3 / Omega_l: communication-efficient stable leader election
// (paper §6.4; algorithm of Aguilera, Delporte-Gallet, Fauconnier,
// Toueg [2]).
//
// Same (accusation time, pid) ranking as Omega_lc, but a process only
// counts contenders it hears *directly*, and a process that sees a better
// contender voluntarily withdraws from the competition by simply ceasing
// to send ALIVEs. Eventually only the leader transmits — O(n) messages per
// heartbeat interval instead of O(n^2) (Figure 6).
//
// Voluntary silence looks exactly like a crash to everyone else's failure
// detector, so withdrawn processes get accused. The algorithm's phase
// mechanism keeps such accusations from raising the accusation time (the
// stability mechanism described in §6.4): ALIVEs carry the sender's
// competition phase; an accusation referencing phase k only counts if the
// target is still competing in phase k. Each re-entry into the competition
// starts a new phase, so accusations triggered by the old silence are
// stale and ignored.
//
// The trade-off: there is no forwarding stage, so a crashed link between
// the leader and a follower cannot be masked — the follower starts its own
// competition and the group diverges until the link heals. This is why S3
// degrades under link crashes while S2 does not (Figure 7).
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "election/elector.hpp"

namespace omega::election {

class omega_l final : public elector {
 public:
  struct options {
    /// The phase guard on accusations. Disabling it (ablation) makes
    /// accusations earned by *voluntary* silence count, so every withdrawal
    /// permanently worsens the withdrawn process's rank — the instability
    /// the mechanism exists to prevent.
    bool phase_guard = true;
  };

  explicit omega_l(elector_context ctx) : omega_l(std::move(ctx), {}) {}
  omega_l(elector_context ctx, options opts);

  void on_alive_payload(node_id from, incarnation inc,
                        const proto::group_payload& payload) override;
  void on_fd_transition(node_id node, bool trusted) override;
  void on_accuse(const proto::accuse_msg& msg) override;
  void on_member_removed(const membership::member_info& member) override;

  [[nodiscard]] std::optional<process_id> evaluate() override;
  [[nodiscard]] bool should_send_alive() const override {
    return ctx_.candidate && competing_;
  }
  void fill_payload(proto::group_payload& payload) override;
  [[nodiscard]] std::string_view name() const override {
    return opts_.phase_guard ? "omega_l" : "omega_l_nophase";
  }
  [[nodiscard]] time_point self_accusation_time() const override { return self_acc_; }
  void set_candidate(bool candidate) override;

  [[nodiscard]] bool competing() const { return competing_; }
  [[nodiscard]] std::uint32_t phase() const { return phase_; }

 private:
  struct contender_state {
    node_id node;
    incarnation inc = 0;
    bool candidate = false;
    time_point acc_time{};
    std::uint32_t phase = 0;
  };

  struct rank {
    time_point acc;
    process_id pid;
    friend bool operator<(const rank& a, const rank& b) {
      if (a.acc != b.acc) return a.acc < b.acc;
      return a.pid < b.pid;
    }
  };

  void note_competition(bool entered);

  options opts_;
  time_point self_acc_{};
  std::uint32_t phase_ = 0;
  bool competing_ = false;
  std::unordered_map<process_id, contender_state> contenders_;
  /// Newest suspicion timestamp processed per accuser — the dedup that
  /// makes on_accuse idempotent under message duplication (ISSUE 10).
  std::unordered_map<node_id, time_point> accuse_processed_;

  /// Candidate members by pid (value = incarnation), so the per-contender
  /// eligibility check is a hash probe instead of a roster scan. Keyed by
  /// the roster version: candidate-flag and incarnation changes bump it
  /// (timestamp refreshes, which the index ignores, do not), so the index
  /// is rebuilt once per roster change rather than once per evaluation.
  std::unordered_map<process_id, incarnation> candidate_index_;
  bool candidate_index_valid_ = false;
  std::uint64_t candidate_index_version_ = 0;

  /// Evaluation memo, same contract as omega_lc's: every input (contenders,
  /// candidacy, self accusation time, trust verdicts, roster) changes only
  /// through an observable event, each of which sets memo_dirty_ (roster
  /// changes bump members_version instead). When nothing changed, the
  /// result — and therefore the competing_/phase_ transition logic, which
  /// is a pure function of that result — cannot change either, so the
  /// cached pid is returned without touching the roster or the FD.
  bool memo_dirty_ = true;
  std::optional<process_id> memo_result_;
  std::uint64_t memo_members_version_ = 0;
};

}  // namespace omega::election
