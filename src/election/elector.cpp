#include "election/elector.hpp"

#include "election/omega_id.hpp"
#include "election/omega_l.hpp"
#include "election/omega_lc.hpp"

namespace omega::election {

std::string_view to_string(algorithm alg) {
  switch (alg) {
    case algorithm::omega_id:
      return "omega_id (S1)";
    case algorithm::omega_lc:
      return "omega_lc (S2)";
    case algorithm::omega_l:
      return "omega_l (S3)";
    case algorithm::omega_lc_noforward:
      return "omega_lc w/o forwarding (ablation)";
    case algorithm::omega_l_nophase:
      return "omega_l w/o phase guard (ablation)";
  }
  return "unknown";
}

std::unique_ptr<elector> make_elector(algorithm alg, elector_context ctx) {
  switch (alg) {
    case algorithm::omega_id:
      return std::make_unique<omega_id>(std::move(ctx));
    case algorithm::omega_lc:
      return std::make_unique<omega_lc>(std::move(ctx));
    case algorithm::omega_l:
      return std::make_unique<omega_l>(std::move(ctx));
    case algorithm::omega_lc_noforward:
      return std::make_unique<omega_lc>(std::move(ctx),
                                        omega_lc::options{.forwarding = false});
    case algorithm::omega_l_nophase:
      return std::make_unique<omega_l>(std::move(ctx),
                                       omega_l::options{.phase_guard = false});
  }
  return nullptr;
}

}  // namespace omega::election
