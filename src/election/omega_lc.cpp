#include "election/omega_lc.hpp"

#include <algorithm>

namespace omega::election {

omega_lc::omega_lc(elector_context ctx, options opts)
    : elector(std::move(ctx)), opts_(opts) {
  // Joining (or re-joining after a crash) counts as having just been
  // accused: an established leader always has an earlier accusation time,
  // which is exactly the stability property S1 lacks.
  self_acc_ = ctx_.clock ? ctx_.clock->now() : time_point{};
}

void omega_lc::on_alive_payload(node_id from, incarnation inc,
                                const proto::group_payload& payload) {
  if (payload.pid == ctx_.self_pid) return;
  auto it = peers_.find(payload.pid);
  if (it != peers_.end() && inc < it->second.inc) return;  // stale incarnation
  const bool existed = it != peers_.end();
  peer_state& st = existed ? it->second : peers_[payload.pid];
  const peer_state before = st;
  st.node = from;
  st.inc = inc;
  st.candidate = payload.candidate;
  st.acc_time = std::max(st.acc_time, payload.accusation_time);
  st.local_leader = payload.local_leader;
  st.local_leader_acc = payload.local_leader_acc;
  // The steady-state heartbeat repeats the same election evidence; only an
  // actual change can affect the next evaluation.
  if (!existed || before.node != st.node || before.inc != st.inc ||
      before.candidate != st.candidate || before.acc_time != st.acc_time ||
      before.local_leader != st.local_leader ||
      before.local_leader_acc != st.local_leader_acc) {
    memo_dirty_ = true;
  }
}

void omega_lc::on_fd_transition(node_id node, bool trusted) {
  memo_dirty_ = true;  // trust verdicts feed fresh(); any edge can flip ranks
  if (trusted) {
    // The link healed before the accusation became necessary: cancel any
    // pending accusation against processes hosted there. This is the path
    // that masks a transient single-link crash completely.
    for (const auto& [pid, st] : peers_) {
      if (st.node == node) pending_accuse_.erase(pid);
    }
    return;
  }
  if (!ctx_.send_accuse) return;
  // Our FD just started suspecting `node`. For every candidate process it
  // hosts: if somebody we trust still forwards that process as their local
  // leader, the process is alive and only our link is at fault — hold the
  // accusation. Otherwise accuse now; if it really crashed the message is
  // lost, and if it is alive (an FD mistake, or all its outbound links
  // died) it will self-demote.
  for (const auto& [pid, st] : peers_) {
    if (st.node != node || !st.candidate) continue;
    if (forwarded_by_someone(pid)) {
      pending_accuse_.insert(pid);
    } else {
      send_accusation(pid, st);
    }
  }
}

bool omega_lc::forwarded_by_someone(process_id pid) const {
  if (!ctx_.is_trusted) return false;
  for (const auto& [reporter, st] : peers_) {
    if (reporter == pid || st.local_leader != pid) continue;
    if (ctx_.is_trusted(st.node)) return true;
  }
  return false;
}

void omega_lc::send_accusation(process_id pid, const peer_state& st) {
  if (!ctx_.send_accuse) return;
  proto::accuse_msg accuse;
  accuse.from = ctx_.self_node;
  accuse.from_inc = ctx_.self_inc;
  accuse.group = ctx_.group;
  accuse.target = pid;
  accuse.target_inc = st.inc;
  accuse.phase = 0;  // Omega_lc does not use phases
  accuse.when = ctx_.clock ? ctx_.clock->now() : time_point{};
  ctx_.send_accuse(accuse, st.node);
}

void omega_lc::recheck_pending_accusations() {
  for (auto it = pending_accuse_.begin(); it != pending_accuse_.end();) {
    const process_id pid = *it;
    auto peer = peers_.find(pid);
    if (peer == peers_.end()) {
      it = pending_accuse_.erase(it);  // removed from the group
      continue;
    }
    if (ctx_.is_trusted && ctx_.is_trusted(peer->second.node)) {
      it = pending_accuse_.erase(it);  // link healed: never accuse
      continue;
    }
    if (!forwarded_by_someone(pid)) {
      // The forwarding evidence is gone too: everyone lost it. Accuse.
      send_accusation(pid, peer->second);
      it = pending_accuse_.erase(it);
      continue;
    }
    ++it;
  }
}

void omega_lc::on_accuse(const proto::accuse_msg& msg) {
  if (msg.target != ctx_.self_pid || msg.target_inc != ctx_.self_inc) return;
  // Idempotency under at-least-once delivery: a suspicion is identified by
  // (accuser, accuser's suspicion time). Replays carry the same `when`, and
  // a reordered older suspicion from the same accuser is subsumed by the
  // newer one already processed — neither may demote us again, or a
  // duplicating network would keep a healthy leader demoted forever.
  auto [it, first] = accuse_processed_.try_emplace(msg.from, msg.when);
  if (!first) {
    if (msg.when <= it->second) return;
    it->second = msg.when;
  }
  const time_point now = ctx_.clock ? ctx_.clock->now() : time_point{};
  if (now > self_acc_) {
    self_acc_ = now;
    memo_dirty_ = true;
  }
}

void omega_lc::on_member_removed(const membership::member_info& member) {
  auto it = peers_.find(member.pid);
  if (it != peers_.end() && it->second.inc <= member.inc) {
    peers_.erase(it);
    pending_accuse_.erase(member.pid);
    memo_dirty_ = true;
  }
}

bool omega_lc::fresh(const membership::member_info& m) const {
  if (m.node == ctx_.self_node) return m.pid == ctx_.self_pid;
  return ctx_.is_trusted && ctx_.is_trusted(m.node);
}

std::optional<omega_lc::rank> omega_lc::local_stage(
    const std::vector<membership::member_info>& members) {
  // Collect the eligible candidates (fresh, with accusation data) first:
  // the optional stability filter needs the whole field before ranking.
  std::vector<rank>& eligible = eligible_scratch_;
  eligible.clear();
  for (const auto& m : members) {
    if (!m.candidate || !fresh(m)) continue;
    time_point acc;
    if (m.pid == ctx_.self_pid) {
      acc = self_acc_;
    } else {
      auto it = peers_.find(m.pid);
      if (it == peers_.end() || it->second.inc != m.inc) continue;  // no data yet
      acc = it->second.acc_time;
    }
    eligible.push_back(rank{acc, m.pid});
  }
  if (eligible.empty()) return std::nullopt;

  if (ctx_.stability_score && eligible.size() > 1) {
    // SEER-style pre-filter: keep only candidates within the tolerance of
    // the most stable one, then fall through to the paper's order. The
    // filter never empties the field (the best-scoring candidate always
    // survives), so a leader is still always chosen. Scores are taken once
    // per candidate into a vector: the callback may walk the adaptation
    // engine's records, so it must not run again per comparison.
    std::vector<double>& scores = scores_scratch_;
    scores.clear();
    scores.reserve(eligible.size());
    double best_score = 0.0;
    for (const rank& r : eligible) {
      scores.push_back(ctx_.stability_score(r.pid));
      best_score = std::max(best_score, scores.back());
    }
    const double cutoff = best_score - opts_.stability_tolerance;
    std::size_t keep = 0;
    for (std::size_t i = 0; i < eligible.size(); ++i) {
      if (scores[i] >= cutoff) eligible[keep++] = eligible[i];
    }
    eligible.resize(keep);
  }

  std::optional<rank> best;
  for (const rank& r : eligible) {
    if (!best || r < *best) best = r;
  }
  return best;
}

std::optional<process_id> omega_lc::evaluate() {
  // Steady-state short-circuit: no input changed since the last full
  // evaluation, so the result (and the stage-1 cache fill_payload reads)
  // is still exact. Disqualifiers: pending accusations (their recheck is
  // time-driven, not event-driven) and an attached stability scorer
  // (scores drift without any protocol event).
  const std::uint64_t roster_version =
      ctx_.members_version ? ctx_.members_version() : 0;
  if (!memo_dirty_ && stage1_cached_ && pending_accuse_.empty() &&
      !ctx_.stability_score && ctx_.members_version &&
      roster_version == memo_members_version_) {
    return memo_result_;
  }

  // Evidence may have changed since the last event batch: fire or cancel
  // held-back accusations first.
  recheck_pending_accusations();

  const auto& members = ctx_.members();
  // Candidate roster indexed per roster version: stage 2 mentions up to one
  // pid per member, and a linear is-candidate scan per mention would make
  // every evaluation O(n^2) — measurable at the hierarchy bench's 120-node
  // rosters.
  if (!candidate_index_valid_ || !ctx_.members_version ||
      roster_version != candidate_index_version_) {
    candidate_index_.clear();
    for (const auto& m : members) {
      if (m.candidate) candidate_index_.insert(m.pid);
    }
    candidate_index_version_ = roster_version;
    candidate_index_valid_ = ctx_.members_version != nullptr;
  }
  const auto is_candidate_member = [&](process_id pid) {
    return candidate_index_.find(pid) != candidate_index_.end();
  };

  // Stage 2: gather (local leader, accusation time) reports from every
  // fresh member plus our own stage-1 result, keeping for each mentioned
  // candidate the *latest* accusation time we can see anywhere (accusation
  // times only grow, so max is the freshest knowledge).
  std::unordered_map<process_id, time_point>& mentioned = mentioned_scratch_;
  mentioned.clear();
  const auto mention = [&](process_id pid, time_point acc) {
    if (!pid.valid() || !is_candidate_member(pid)) return;
    auto [it, inserted] = mentioned.try_emplace(pid, acc);
    if (!inserted) it->second = std::max(it->second, acc);
  };

  stage1_cache_ = local_stage(members);
  stage1_cached_ = true;
  if (stage1_cache_) mention(stage1_cache_->pid, stage1_cache_->acc);
  if (opts_.forwarding) {
    for (const auto& m : members) {
      if (m.pid == ctx_.self_pid || !fresh(m)) continue;
      auto it = peers_.find(m.pid);
      if (it == peers_.end() || it->second.inc != m.inc) continue;
      mention(it->second.local_leader, it->second.local_leader_acc);
    }
  }
  // Refine with directly-known accusation times.
  for (auto& [pid, acc] : mentioned) {
    if (pid == ctx_.self_pid) {
      acc = std::max(acc, self_acc_);
    } else if (auto it = peers_.find(pid); it != peers_.end()) {
      acc = std::max(acc, it->second.acc_time);
    }
  }

  std::optional<rank> best;
  for (const auto& [pid, acc] : mentioned) {
    const rank r{acc, pid};
    if (!best || r < *best) best = r;
  }
  memo_result_ = best ? std::optional<process_id>(best->pid) : std::nullopt;
  memo_members_version_ = roster_version;
  memo_dirty_ = false;
  return memo_result_;
}

void omega_lc::set_candidate(bool candidate) {
  if (ctx_.candidate == candidate) return;
  ctx_.candidate = candidate;
  memo_dirty_ = true;
  if (candidate) {
    // Enter the order ranked behind every established candidate, exactly
    // like a fresh join would (the accusation time doubles as join time).
    self_acc_ = ctx_.clock ? ctx_.clock->now() : time_point{};
  }
}

void omega_lc::fill_payload(proto::group_payload& payload) {
  payload.group = ctx_.group;
  payload.pid = ctx_.self_pid;
  payload.candidate = ctx_.candidate;
  payload.competing = true;  // every alive process is active in Omega_lc
  payload.accusation_time = self_acc_;
  // Stage-1 result travels in every heartbeat: this is the forwarding that
  // lets peers elect a leader they cannot hear directly. The cached result
  // of the last evaluate() is current — every stage-1 input (payloads, FD
  // transitions, accusations, membership) re-evaluates before sending.
  const std::optional<rank> own =
      stage1_cached_ ? stage1_cache_ : local_stage(ctx_.members());
  if (own) {
    payload.local_leader = own->pid;
    payload.local_leader_acc = own->acc;
  } else {
    payload.local_leader = process_id::invalid();
    payload.local_leader_acc = time_point{};
  }
  payload.phase = 0;
}

}  // namespace omega::election
