// S1 / Omega_id: leader = smallest process id among alive candidates
// (paper §6.2).
//
// The textbook algorithm [17, 8, 14]: every candidate heartbeats, everyone
// trusts the failure detector, and the leader is simply the smallest-id
// candidate currently deemed alive. Deliberately included as the unstable
// baseline: whenever a process with a smaller id than the current leader
// (re)joins the group, the working leader is demoted — the paper measures
// about six such unjustified demotions per hour under its churn model
// (Figure 3), all caused by the algorithm, none by the failure detector.
#pragma once

#include "election/elector.hpp"

namespace omega::election {

class omega_id final : public elector {
 public:
  explicit omega_id(elector_context ctx) : elector(std::move(ctx)) {}

  void on_alive_payload(node_id from, incarnation inc,
                        const proto::group_payload& payload) override;
  void on_fd_transition(node_id node, bool trusted) override;
  void on_accuse(const proto::accuse_msg& msg) override;
  void on_member_removed(const membership::member_info& member) override;

  [[nodiscard]] std::optional<process_id> evaluate() override;
  [[nodiscard]] bool should_send_alive() const override;
  void fill_payload(proto::group_payload& payload) override;
  [[nodiscard]] std::string_view name() const override { return "omega_id"; }
};

}  // namespace omega::election
