#include "election/omega_id.hpp"

namespace omega::election {

void omega_id::on_alive_payload(node_id, incarnation, const proto::group_payload&) {
  // Membership and freshness are fully handled by the group-maintenance and
  // failure-detector layers; Omega_id carries no election state of its own.
}

void omega_id::on_fd_transition(node_id, bool) {
  // No accusations in Omega_id: suspicion simply removes the process from
  // the alive set used by evaluate().
}

void omega_id::on_accuse(const proto::accuse_msg&) {}

void omega_id::on_member_removed(const membership::member_info&) {}

std::optional<process_id> omega_id::evaluate() {
  std::optional<process_id> best;
  for (const auto& m : ctx_.members()) {
    if (!m.candidate) continue;
    const bool alive =
        m.node == ctx_.self_node ? true : (ctx_.is_trusted && ctx_.is_trusted(m.node));
    if (!alive) continue;
    if (!best || m.pid < *best) best = m.pid;
  }
  return best;
}

bool omega_id::should_send_alive() const { return ctx_.candidate; }

void omega_id::fill_payload(proto::group_payload& payload) {
  payload.group = ctx_.group;
  payload.pid = ctx_.self_pid;
  payload.candidate = ctx_.candidate;
  payload.competing = ctx_.candidate;
}

}  // namespace omega::election
