// S2 / Omega_lc: stable leader election tolerating lossy AND crashed links
// (paper §6.3; algorithm of Aguilera, Delporte-Gallet, Fauconnier, Toueg [4]).
//
// Every process tracks its *accusation time* — the last time it was
// suspected of having crashed (initially its join time, which is what makes
// a freshly recovered process rank behind any established leader). All
// alive processes broadcast ALIVEs carrying their accusation time plus
// their current *local leader* choice. Leader selection is two-staged:
//
//   stage 1 (local):  earliest (accusation time, pid) among the candidates
//                     this process hears directly and trusts;
//   stage 2 (global): earliest (accusation time, pid) among the local
//                     leaders reported by every trusted process (plus own).
//
// Stage 2 — the local-leader *forwarding* mechanism — is what keeps the
// group agreed on a leader even when some links to it have crashed: a
// process that lost its direct link to the leader keeps electing it through
// the reports of its peers. The price is that every process must keep
// broadcasting: O(n^2) ALIVEs per heartbeat interval (Figure 6).
//
// When the failure detector of p starts suspecting q, p wants to accuse q
// so that an alive q advances its accusation time, demoting itself in the
// order. But accusing *every* direct suspicion would defeat the forwarding:
// a single crashed link q -> p would let p demote a perfectly good leader
// that everyone else still hears (and a *permanently* crashed link would
// demote working leaders forever). So the accusation is suppressed while
// some trusted peer still forwards q as its local leader — evidence that q
// is alive and only p's link is at fault. The suppressed accusation stays
// pending: if the forwarding evidence disappears too (q really crashed, or
// all its outbound links did), the accusation fires; if p's direct link
// heals first, it is cancelled. With the Chen et al. FD at its default QoS
// the detector essentially never errs, so on lossy links S2 makes zero
// unjustified demotions (Figure 4), and under link crashes the leader
// survives any outage that leaves it at least one working outbound link
// (Figure 7).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "election/elector.hpp"

namespace omega::election {

class omega_lc final : public elector {
 public:
  struct options {
    /// Stage-2 local-leader forwarding. Disabling it (ablation) reduces the
    /// election to "earliest accusation time among directly trusted
    /// candidates" and forfeits the tolerance to crashed links (Figure 7).
    bool forwarding = true;
    /// Stability-aware candidate filtering (active only when the hosting
    /// service supplies ctx.stability_score): stage 1 drops candidates
    /// scoring more than this far below the best-scoring candidate before
    /// applying the usual (accusation time, pid) order. Once the system is
    /// stable all scores converge high and the filter passes everyone, so
    /// the classic eventual-leadership argument is unchanged.
    double stability_tolerance = 0.25;
  };

  explicit omega_lc(elector_context ctx) : omega_lc(std::move(ctx), {}) {}
  omega_lc(elector_context ctx, options opts);

  void on_alive_payload(node_id from, incarnation inc,
                        const proto::group_payload& payload) override;
  void on_fd_transition(node_id node, bool trusted) override;
  void on_accuse(const proto::accuse_msg& msg) override;
  void on_member_removed(const membership::member_info& member) override;

  [[nodiscard]] std::optional<process_id> evaluate() override;
  [[nodiscard]] bool should_send_alive() const override { return true; }
  void fill_payload(proto::group_payload& payload) override;
  [[nodiscard]] std::string_view name() const override {
    return opts_.forwarding ? "omega_lc" : "omega_lc_noforward";
  }
  [[nodiscard]] time_point self_accusation_time() const override { return self_acc_; }
  void set_candidate(bool candidate) override;

 private:
  struct peer_state {
    node_id node;
    incarnation inc = 0;
    bool candidate = false;
    time_point acc_time{};
    process_id local_leader = process_id::invalid();
    time_point local_leader_acc{};
  };

  /// (accusation time, pid) lexicographic order; smaller wins.
  struct rank {
    time_point acc;
    process_id pid;
    friend bool operator<(const rank& a, const rank& b) {
      if (a.acc != b.acc) return a.acc < b.acc;
      return a.pid < b.pid;
    }
  };

  /// Stage 1 over current membership; also returns the winner's acc time.
  /// Invokes the stability callback at most once per candidate. Non-const
  /// only because it reuses the scratch vectors below.
  [[nodiscard]] std::optional<rank> local_stage(
      const std::vector<membership::member_info>& members);

  [[nodiscard]] bool fresh(const membership::member_info& m) const;

  /// True if some *other* trusted peer currently reports `pid` as its local
  /// leader — the evidence that keeps a suspicion from becoming an ACCUSE.
  [[nodiscard]] bool forwarded_by_someone(process_id pid) const;

  void send_accusation(process_id pid, const peer_state& st);
  /// Fires or cancels pending accusations as evidence changes; called from
  /// evaluate() so it runs after every batch of protocol events.
  void recheck_pending_accusations();

  options opts_;
  time_point self_acc_{};
  /// Stage-1 result of the last evaluate(). fill_payload reuses it — every
  /// event that can change stage 1 re-runs evaluate() before the next send,
  /// so the (potentially expensive) stability scores are taken once per
  /// event batch, not once more per outgoing payload.
  std::optional<rank> stage1_cache_;
  bool stage1_cached_ = false;
  std::unordered_map<process_id, peer_state> peers_;
  /// Directly-suspected candidates whose accusation is suppressed by
  /// forwarding evidence.
  std::unordered_set<process_id> pending_accuse_;
  /// Newest suspicion timestamp processed per accuser — the dedup that
  /// makes on_accuse idempotent under message duplication (ISSUE 10).
  std::unordered_map<node_id, time_point> accuse_processed_;

  /// Candidate members by pid, keyed by roster version (same contract as
  /// omega_l's index): candidate-flag changes bump the version, timestamp
  /// refreshes do not, so one rebuild serves every evaluation against the
  /// same roster.
  std::unordered_set<process_id> candidate_index_;
  bool candidate_index_valid_ = false;
  std::uint64_t candidate_index_version_ = 0;

  /// Per-evaluation scratch, cleared on entry. evaluate() runs once per
  /// inbound payload, so rebuilding these containers from a cold heap every
  /// call dominated the 500-node benches; clearing keeps their capacity.
  std::unordered_map<process_id, time_point> mentioned_scratch_;
  std::vector<rank> eligible_scratch_;
  std::vector<double> scores_scratch_;

  /// Evaluation memo. evaluate() is a pure function of (peers_, self_acc_,
  /// trust verdicts, candidacy, roster) — every one of those inputs changes
  /// only through an observable event (payload that actually changed peer
  /// state, FD transition, ACCUSE, candidacy flip, roster version bump), so
  /// between such events the cached result is returned as-is. The memo is
  /// bypassed while accusations are pending (their recheck is time-driven)
  /// and when a stability scorer is attached (scores drift silently). In
  /// steady state this turns the per-ALIVE O(roster) evaluation into O(1) —
  /// the difference between 2x and >3x on the 500-node bench.
  bool memo_dirty_ = true;
  std::optional<process_id> memo_result_;
  std::uint64_t memo_members_version_ = 0;
};

}  // namespace omega::election
