// Leader Election Algorithm module interface (paper §4, Figure 2).
//
// One elector instance runs per (service instance, group). The service
// feeds it protocol events (ALIVE payloads, FD trust/suspect transitions,
// ACCUSE messages, membership changes) and, after each batch of events,
// calls `evaluate()` to obtain the current leader choice. Electors are
// pluggable — the paper ships three:
//
//   omega_id (S1): smallest id among alive candidates. Simple but unstable.
//   omega_lc (S2): accusation times + local-leader forwarding [4]. Stable,
//                  tolerates link crashes, O(n^2) messages.
//   omega_l  (S3): accusation times + competition withdrawal [2]. Stable,
//                  communication-efficient (eventually only the leader
//                  sends), O(n) messages, but assumes losses are transient.
//
// The elector never touches the network directly: it calls the injected
// `send_accuse` hook, and tells the service whether this process should
// currently be emitting ALIVE payloads for the group via
// `should_send_alive()`.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "common/executor.hpp"
#include "common/ids.hpp"
#include "membership/member_table.hpp"
#include "obs/sink.hpp"
#include "proto/wire.hpp"

namespace omega::election {

/// Which of the paper's three algorithms a service instance runs. The two
/// `_ablation` variants disable one design mechanism each; they exist for
/// the ablation benchmarks (see DESIGN.md) and should not be deployed.
enum class algorithm {
  omega_id,           // S1
  omega_lc,           // S2
  omega_l,            // S3
  omega_lc_noforward, // S2 without stage-2 local-leader forwarding (ablation)
  omega_l_nophase,    // S3 without the phase guard on accusations (ablation)
};

[[nodiscard]] std::string_view to_string(algorithm alg);

/// Everything an elector needs from its hosting service instance.
struct elector_context {
  node_id self_node;
  process_id self_pid;
  incarnation self_inc = 0;
  group_id group;
  bool candidate = false;
  clock_source* clock = nullptr;
  /// FD verdict for a remote node within this group.
  std::function<bool(node_id)> is_trusted;
  /// Current group membership, sorted by pid. Returns a reference into the
  /// group-maintenance roster cache: valid until the next membership event,
  /// which is always outside an elector call (datagram sends are enqueued,
  /// never delivered synchronously). Electors run evaluate() once per
  /// inbound payload, so this must not copy the roster.
  std::function<const std::vector<membership::member_info>&()> members;
  /// Monotonic roster-content version (member_table::version). Lets an
  /// elector detect membership changes between evaluations without a scan;
  /// leave null to disable evaluation memoization.
  std::function<std::uint64_t()> members_version;
  /// Sends an ACCUSE message to the node hosting the accused process.
  std::function<void(const proto::accuse_msg&, node_id)> send_accuse;
  /// Optional stability score in [0, 1] for a candidate (higher = more
  /// stable), served by the adaptation engine when the join enabled
  /// stability ranking. Null when the feature is off — electors must
  /// behave exactly as the paper specifies in that case.
  std::function<double(process_id)> stability_score;
  /// Observability sink of the hosting instance; electors trace algorithm
  /// state transitions (omega_l competition entry/withdrawal) through it.
  /// Null (default) disables tracing.
  obs::sink* sink = nullptr;
};

class elector {
 public:
  explicit elector(elector_context ctx) : ctx_(std::move(ctx)) {}
  virtual ~elector() = default;

  elector(const elector&) = delete;
  elector& operator=(const elector&) = delete;

  /// One group payload arrived in an ALIVE from `from` (already
  /// incarnation-screened by the failure-detector layer is NOT assumed;
  /// implementations must ignore payloads older than known incarnations).
  virtual void on_alive_payload(node_id from, incarnation inc,
                                const proto::group_payload& payload) = 0;

  /// FD trust/suspect edge for `node` within this group.
  virtual void on_fd_transition(node_id node, bool trusted) = 0;

  /// An ACCUSE message addressed to the local process.
  virtual void on_accuse(const proto::accuse_msg& msg) = 0;

  /// Membership removal (voluntary leave, eviction, or replacement by a
  /// newer incarnation).
  virtual void on_member_removed(const membership::member_info& member) = 0;

  /// Recomputes the leader choice from current state.
  [[nodiscard]] virtual std::optional<process_id> evaluate() = 0;

  /// Whether the local process should currently emit ALIVE payloads for
  /// this group. (S1/S2: iff it participates actively; S3: iff competing.)
  [[nodiscard]] virtual bool should_send_alive() const = 0;

  /// Fills the election fields of an outgoing ALIVE payload.
  virtual void fill_payload(proto::group_payload& payload) = 0;

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Accusation time of the local process (exposed for tests/metrics).
  [[nodiscard]] virtual time_point self_accusation_time() const { return {}; }

  /// Changes the local process's candidacy in place, preserving all learned
  /// election state (contender tables, current leader view). Becoming a
  /// candidate must rank the process behind any established leader — the
  /// same guarantee a fresh re-join gives (omega_lc/omega_l reset the self
  /// accusation time to "now"; omega_l also opens a fresh competition
  /// phase) — without destroying the group view the way leave + re-join
  /// does. No-op when the flag already matches.
  virtual void set_candidate(bool candidate) { ctx_.candidate = candidate; }
  [[nodiscard]] bool is_candidate() const { return ctx_.candidate; }

 protected:
  elector_context ctx_;
};

/// Factory for the three paper algorithms.
[[nodiscard]] std::unique_ptr<elector> make_elector(algorithm alg,
                                                    elector_context ctx);

}  // namespace omega::election
