#include "election/omega_l.hpp"

#include <algorithm>

namespace omega::election {

omega_l::omega_l(elector_context ctx, options opts)
    : elector(std::move(ctx)), opts_(opts) {
  self_acc_ = ctx_.clock ? ctx_.clock->now() : time_point{};
  if (ctx_.candidate) {
    // A joining candidate competes until it hears someone better; its fresh
    // accusation time guarantees it loses against any established leader.
    competing_ = true;
    phase_ = 1;
  }
}

void omega_l::on_alive_payload(node_id from, incarnation inc,
                               const proto::group_payload& payload) {
  if (payload.pid == ctx_.self_pid) return;
  auto it = contenders_.find(payload.pid);
  if (it != contenders_.end() && inc < it->second.inc) return;  // stale
  if (!payload.competing || !payload.candidate) {
    // A final ALIVE with competing=false is a graceful withdrawal: drop the
    // contender right away instead of waiting for a timeout.
    if (it != contenders_.end()) {
      contenders_.erase(it);
      memo_dirty_ = true;
    }
    return;
  }
  const bool existed = it != contenders_.end();
  contender_state& st = existed ? it->second : contenders_[payload.pid];
  const contender_state before = st;
  st.node = from;
  st.inc = inc;
  st.candidate = payload.candidate;
  st.acc_time = std::max(st.acc_time, payload.accusation_time);
  st.phase = payload.phase;
  // The steady-state leader heartbeat repeats the same evidence; only an
  // actual change can affect the next evaluation.
  if (!existed || before.node != st.node || before.inc != st.inc ||
      before.candidate != st.candidate || before.acc_time != st.acc_time ||
      before.phase != st.phase) {
    memo_dirty_ = true;
  }
}

void omega_l::on_fd_transition(node_id node, bool trusted) {
  memo_dirty_ = true;  // trust verdicts gate contender eligibility
  if (trusted) return;
  // Timeout on a contender: accuse it (tagged with the phase we last saw,
  // so a voluntary withdrawal in the meantime makes the accusation stale)
  // and drop it from the competition.
  const time_point now = ctx_.clock ? ctx_.clock->now() : time_point{};
  for (auto it = contenders_.begin(); it != contenders_.end();) {
    const auto& [pid, st] = *it;
    if (st.node != node) {
      ++it;
      continue;
    }
    if (ctx_.send_accuse) {
      proto::accuse_msg accuse;
      accuse.from = ctx_.self_node;
      accuse.from_inc = ctx_.self_inc;
      accuse.group = ctx_.group;
      accuse.target = pid;
      accuse.target_inc = st.inc;
      accuse.phase = st.phase;
      accuse.when = now;
      ctx_.send_accuse(accuse, node);
    }
    it = contenders_.erase(it);
  }
}

void omega_l::on_accuse(const proto::accuse_msg& msg) {
  if (msg.target != ctx_.self_pid || msg.target_inc != ctx_.self_inc) return;
  // The stability mechanism: only a suspicion of our *current* competition
  // phase can demote us. Accusations earned by voluntary silence carry an
  // older phase and are ignored. (The ablation variant counts everything,
  // which punishes voluntary withdrawal — see options::phase_guard.)
  if (opts_.phase_guard && (!competing_ || msg.phase != phase_)) return;
  // Idempotency under at-least-once delivery: a suspicion is identified by
  // (accuser, accuser's suspicion time); replays and reordered older
  // suspicions from the same accuser must not demote us a second time.
  auto [it, first] = accuse_processed_.try_emplace(msg.from, msg.when);
  if (!first) {
    if (msg.when <= it->second) return;
    it->second = msg.when;
  }
  const time_point now = ctx_.clock ? ctx_.clock->now() : time_point{};
  if (now > self_acc_) {
    self_acc_ = now;
    memo_dirty_ = true;
  }
}

void omega_l::on_member_removed(const membership::member_info& member) {
  auto it = contenders_.find(member.pid);
  if (it != contenders_.end() && it->second.inc <= member.inc) {
    contenders_.erase(it);
    memo_dirty_ = true;
  }
}

std::optional<process_id> omega_l::evaluate() {
  // Steady-state short-circuit: see the memo contract in the header. The
  // competing_/phase_ side effects below depend only on `best`, which
  // cannot differ from the memoized run when no input changed.
  const std::uint64_t roster_version =
      ctx_.members_version ? ctx_.members_version() : 0;
  if (!memo_dirty_ && ctx_.members_version &&
      roster_version == memo_members_version_) {
    return memo_result_;
  }

  // Candidate roster indexed per roster *version*, not per evaluation: the
  // per-contender linear scan made every evaluation O(contenders * members)
  // — quadratic in the global group — and during cluster settle many
  // evaluations share one roster version.
  if (!candidate_index_valid_ || !ctx_.members_version ||
      roster_version != candidate_index_version_) {
    candidate_index_.clear();
    for (const auto& m : ctx_.members()) {
      if (m.candidate) candidate_index_.emplace(m.pid, m.inc);
    }
    candidate_index_version_ = roster_version;
    candidate_index_valid_ = ctx_.members_version != nullptr;
  }
  const auto is_candidate_member = [&](process_id pid, incarnation inc) {
    auto it = candidate_index_.find(pid);
    return it != candidate_index_.end() && it->second == inc;
  };

  std::optional<rank> best;
  if (ctx_.candidate) best = rank{self_acc_, ctx_.self_pid};
  for (const auto& [pid, st] : contenders_) {
    if (!is_candidate_member(pid, st.inc)) continue;
    if (!ctx_.is_trusted || !ctx_.is_trusted(st.node)) continue;
    const rank r{st.acc_time, pid};
    if (!best || r < *best) best = r;
  }

  const bool now_competing = ctx_.candidate && best && best->pid == ctx_.self_pid;
  if (now_competing && !competing_) {
    competing_ = true;
    ++phase_;  // new competition epoch: accusations from the silence are stale
    note_competition(true);
  } else if (!now_competing && competing_) {
    competing_ = false;
    note_competition(false);
  }

  memo_result_ = best ? std::optional<process_id>(best->pid) : std::nullopt;
  memo_members_version_ = roster_version;
  memo_dirty_ = false;
  return memo_result_;
}

void omega_l::set_candidate(bool candidate) {
  if (ctx_.candidate == candidate) return;
  ctx_.candidate = candidate;
  memo_dirty_ = true;
  if (candidate) {
    // Same entry semantics as a fresh candidate join: compete until we hear
    // someone better, ranked behind every established contender, in a new
    // phase so accusations earned by the listener silence are stale.
    self_acc_ = ctx_.clock ? ctx_.clock->now() : time_point{};
    competing_ = true;
    ++phase_;
    note_competition(true);
  } else {
    const bool was = competing_;
    competing_ = false;  // the service's reevaluate sends the withdrawal
    if (was) note_competition(false);
  }
}

void omega_l::note_competition(bool entered) {
  if (!ctx_.sink) return;
  obs::trace_event ev;
  ev.kind = entered ? obs::event_kind::competition_enter
                    : obs::event_kind::competition_withdraw;
  ev.at = ctx_.clock ? ctx_.clock->now() : time_point{};
  ev.group = ctx_.group;
  ev.subject = ctx_.self_pid;
  ev.value = static_cast<double>(phase_);
  ctx_.sink->record(ev);
}

void omega_l::fill_payload(proto::group_payload& payload) {
  payload.group = ctx_.group;
  payload.pid = ctx_.self_pid;
  payload.candidate = ctx_.candidate;
  payload.competing = competing_;
  payload.accusation_time = self_acc_;
  payload.phase = phase_;
  payload.local_leader = process_id::invalid();
  payload.local_leader_acc = time_point{};
}

}  // namespace omega::election
