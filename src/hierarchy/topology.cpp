#include "hierarchy/topology.hpp"

#include <stdexcept>
#include <utility>

namespace omega::hierarchy {

topology::topology(std::size_t nodes, std::vector<std::size_t> groups_per_tier,
                   group_id base)
    : nodes_(nodes), counts_(std::move(groups_per_tier)), base_(base) {
  if (nodes_ == 0) throw std::invalid_argument("topology: zero nodes");
  if (counts_.empty()) throw std::invalid_argument("topology: no tiers");
  if (counts_.back() != 1) {
    throw std::invalid_argument("topology: top tier must be a single group");
  }
  if (counts_.front() > nodes_) {
    throw std::invalid_argument("topology: more regions than nodes");
  }
  for (std::size_t t = 0; t + 1 < counts_.size(); ++t) {
    if (counts_[t] == 0 || counts_[t + 1] > counts_[t]) {
      throw std::invalid_argument("topology: tier counts must be non-increasing");
    }
  }
  offsets_.reserve(counts_.size());
  std::size_t offset = 0;
  for (std::size_t count : counts_) {
    offsets_.push_back(offset);
    offset += count;
  }
}

topology topology::two_tier(std::size_t nodes, std::size_t regions,
                            group_id base) {
  return topology(nodes, {regions, 1}, base);
}

std::size_t topology::groups_in_tier(std::size_t tier) const {
  return counts_.at(tier);
}

std::size_t topology::region_of(node_id node) const {
  const std::size_t i = node.value();
  if (i >= nodes_) throw std::out_of_range("topology: node outside roster");
  return i * counts_.front() / nodes_;
}

std::size_t topology::group_index(node_id node, std::size_t tier) const {
  // Coarsen proportionally: tier t's groups partition tier 0's regions in
  // contiguous, balanced runs.
  return region_of(node) * counts_.at(tier) / counts_.front();
}

group_id topology::tier_group(std::size_t tier, std::size_t index) const {
  if (index >= counts_.at(tier)) {
    throw std::out_of_range("topology: group index outside tier");
  }
  return group_id{base_.value() +
                  static_cast<std::uint32_t>(offsets_[tier] + index)};
}

group_id topology::group_at(node_id node, std::size_t tier) const {
  return tier_group(tier, group_index(node, tier));
}

std::size_t topology::region_size(std::size_t region) const {
  const std::size_t regions = counts_.front();
  if (region >= regions) throw std::out_of_range("topology: region index");
  // Must stay the exact inverse of region_of: node i is in region
  // floor(i * regions / nodes), so region r covers
  // [ceil(r * nodes / regions), ceil((r + 1) * nodes / regions)).
  const auto begin_of = [&](std::size_t r) {
    return (r * nodes_ + regions - 1) / regions;
  };
  return begin_of(region + 1) - begin_of(region);
}

bool topology::same_region(node_id a, node_id b) const {
  return region_of(a) == region_of(b);
}

}  // namespace omega::hierarchy
