// Hierarchical election topology descriptor (paper §7; DESIGN.md §7).
//
// Flat all-to-all election does not reach large dynamic rosters: every
// process monitors (and with Omega_lc is monitored by) every other, so
// messages, link estimators and per-remote operating points all grow with
// the roster. The paper's §7 way out is hierarchy: keep each election
// among a small candidate set and let the *winners* compete one tier up.
//
// A `topology` describes that shape declaratively: `nodes` workstations
// are split into contiguous tier-0 groups ("regions"); tier 1 coarsens
// the regions, and so on until the top tier is a single global group.
// The descriptor allocates one `group_id` per (tier, group index) from a
// private base so hierarchy groups never collide with application groups,
// and maps every node to its group chain. It holds no protocol state —
// `hierarchy_coordinator` animates it on top of the election service.
#pragma once

#include <cstddef>
#include <vector>

#include "common/ids.hpp"

namespace omega::hierarchy {

class topology {
 public:
  /// Default base of the hierarchy's group-id range; chosen high so that
  /// hand-allocated application group ids stay clear of it.
  static constexpr std::uint32_t default_group_base = 0x40000000u;

  /// `groups_per_tier[t]` is the number of groups in tier t; tier counts
  /// must be non-increasing and the top tier must hold exactly one group.
  /// Throws std::invalid_argument on a malformed shape.
  topology(std::size_t nodes, std::vector<std::size_t> groups_per_tier,
           group_id base = group_id{default_group_base});

  /// The common case: `regions` leaf groups under one global group.
  static topology two_tier(std::size_t nodes, std::size_t regions,
                           group_id base = group_id{default_group_base});

  [[nodiscard]] std::size_t nodes() const { return nodes_; }
  [[nodiscard]] std::size_t tiers() const { return counts_.size(); }
  [[nodiscard]] std::size_t top_tier() const { return counts_.size() - 1; }
  [[nodiscard]] std::size_t groups_in_tier(std::size_t tier) const;

  /// Tier-0 group index of a node: floor(node * regions / nodes) — regions
  /// are contiguous, balanced blocks (sizes differ by at most one).
  [[nodiscard]] std::size_t region_of(node_id node) const;
  /// Group index of a node within `tier` (regions coarsen proportionally).
  [[nodiscard]] std::size_t group_index(node_id node, std::size_t tier) const;

  /// The group id of (tier, group index) / of the node's group at `tier`.
  [[nodiscard]] group_id tier_group(std::size_t tier, std::size_t index) const;
  [[nodiscard]] group_id group_at(node_id node, std::size_t tier) const;
  /// The single top-tier ("global") group.
  [[nodiscard]] group_id top_group() const { return tier_group(top_tier(), 0); }

  /// Number of nodes in region `region`.
  [[nodiscard]] std::size_t region_size(std::size_t region) const;
  [[nodiscard]] bool same_region(node_id a, node_id b) const;

 private:
  std::size_t nodes_;
  std::vector<std::size_t> counts_;   // groups per tier
  std::vector<std::size_t> offsets_;  // group-id offset of each tier
  group_id base_;
};

}  // namespace omega::hierarchy
