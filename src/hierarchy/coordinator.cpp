#include "hierarchy/coordinator.hpp"

#include <utility>

namespace omega::hierarchy {

hierarchy_coordinator::hierarchy_coordinator(
    service::leader_election_service& svc, topology topo, process_id pid,
    coordinator_options opts, tier_leader_callback on_leader)
    : svc_(svc),
      topo_(std::move(topo)),
      pid_(pid),
      opts_(std::move(opts)),
      on_leader_(std::move(on_leader)),
      region_(topo_.region_of(svc.self())),
      candidate_(topo_.tiers(), false) {
  candidate_[0] = true;
  svc_.register_process(pid_);  // idempotent: false just means already there
  // Scope membership dissemination to the group rosters before the first
  // join fires any HELLO: the per-tier groups are small (regions) or thin
  // (upper tiers: a few candidates, silent listeners), so cluster-wide
  // anti-entropy would be almost entirely wasted fan-out.
  if (opts_.scoped_hello) {
    svc_.set_hello_fanout(membership::hello_fanout::roster);
  }
  // Annotate the whole group chain with tier numbers before any join can
  // emit a trace event, so every recorded event of a hierarchical group
  // carries its tier.
  if (obs::sink* sink = svc_.observability()) {
    for (std::size_t tier = 0; tier < topo_.tiers(); ++tier) {
      sink->set_tier(topo_.group_at(svc_.self(), tier),
                     static_cast<std::int32_t>(tier));
    }
  }
  // Join upper tiers first (as listeners), the region group last: the very
  // first region evaluation can already elect this node (a one-node region,
  // or the first joiner), and the promotion path requires the tier-1 group
  // to be joined when that callback fires.
  for (std::size_t tier = topo_.tiers(); tier-- > 1;) {
    join_tier(tier, /*candidate=*/false);
  }
  join_tier(0, /*candidate=*/true);
}

void hierarchy_coordinator::shutdown() {
  if (shutdown_) return;
  shutdown_ = true;  // callbacks fired by the leaves must not re-join
  for (std::size_t tier = 0; tier < topo_.tiers(); ++tier) {
    svc_.leave_group(pid_, topo_.group_at(svc_.self(), tier));
  }
}

std::optional<process_id> hierarchy_coordinator::leader(
    std::size_t tier) const {
  return svc_.leader(topo_.group_at(svc_.self(), tier));
}

std::optional<process_id> hierarchy_coordinator::global_leader() const {
  return svc_.leader(topo_.top_group());
}

bool hierarchy_coordinator::candidate_at(std::size_t tier) const {
  return tier < candidate_.size() && candidate_[tier];
}

service::join_options hierarchy_coordinator::join_opts(std::size_t tier,
                                                       bool candidate) const {
  const tier_options& t = tier == 0 ? opts_.region : opts_.upper;
  service::join_options jo;
  jo.candidate = candidate;
  jo.notify = service::notification_mode::interrupt;
  jo.qos = t.qos;
  jo.fd_class = t.fd_class;
  jo.alg = t.alg;
  jo.stability_ranking = t.stability_ranking;
  return jo;
}

void hierarchy_coordinator::join_tier(std::size_t tier, bool candidate) {
  svc_.join_group(pid_, topo_.group_at(svc_.self(), tier),
                  join_opts(tier, candidate),
                  [this, tier](group_id, std::optional<process_id> leader) {
                    on_tier_leader(tier, leader);
                  });
}

void hierarchy_coordinator::on_tier_leader(std::size_t tier,
                                           std::optional<process_id> leader) {
  if (shutdown_) return;
  if (tier + 1 < topo_.tiers() && leader.has_value()) {
    // A definite leader at tier t decides our tier-(t+1) candidacy. A
    // leaderless window (nullopt) holds the current candidacy instead:
    // resigning during a failover would only lengthen the upper tier's own
    // vacancy, and a crashed node's candidacy vanishes with it regardless.
    set_candidacy(tier + 1, *leader == pid_);
  }
  if (on_leader_) on_leader_(tier, leader);
}

void hierarchy_coordinator::set_candidacy(std::size_t tier, bool want) {
  if (candidate_[tier] == want) return;
  candidate_[tier] = want;  // set first: the flip can fire callbacks
  if (want) {
    ++promotions_;
  } else {
    ++demotions_;
  }
  if (obs::sink* sink = svc_.observability()) {
    obs::trace_event ev;
    ev.kind = want ? obs::event_kind::promotion : obs::event_kind::demotion;
    ev.at = svc_.clock().now();
    ev.group = topo_.group_at(svc_.self(), tier);
    ev.subject = pid_;
    sink->record(ev);
  }
  // In-place flip: the elector keeps its learned state and current leader
  // view, and a promotion still resets our accusation time to "now" — the
  // property that keeps a promoted (or re-promoted) candidate ranked
  // behind any established upper-tier leader. The historical leave +
  // re-join did the same ranking reset but wiped this node's tier view
  // (transiently breaking cluster-wide agreement on the upper leader) and
  // could reorder its LEAVE behind its JOIN on the wire, knocking the
  // node out of peers' rosters until the next anti-entropy round.
  const group_id group = topo_.group_at(svc_.self(), tier);
  if (!svc_.set_candidacy(pid_, group, want)) {
    // The group is unexpectedly not joined (shutdown race): fall back to a
    // fresh join with the wanted flag.
    join_tier(tier, want);
  }
}

}  // namespace omega::hierarchy
