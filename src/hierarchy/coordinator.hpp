// Hierarchy coordinator: automates the paper's §7 tiered election on top
// of `service::leader_election_service` (DESIGN.md §7).
//
// One coordinator runs next to each service instance. It joins the node's
// whole group chain from the topology descriptor — the tier-0 region group
// as a leadership candidate, every upper-tier group as a passive
// *listener* (a member that learns the leader but never competes) — and
// then keeps the candidate sets of the upper tiers in sync with regional
// leadership:
//
//   * promotion: when this node becomes the leader of its tier-t group, it
//     flips its tier-(t+1) candidacy on in place
//     (`leader_election_service::set_candidacy`);
//   * demotion: when another process takes over tier t, this node flips
//     its tier-(t+1) candidacy off, withdrawing from that election.
//
// Races resolve through mechanisms the lower layers already have. A
// freshly promoted candidate enters the upper tier with accusation time =
// now, so it ranks behind any established upper-tier leader — promotion
// and stale-incarnation rejoins never *demote* a healthy global leader.
// Two nodes that both believe they lead a region (a transient partition)
// are simply two candidates; the upper election orders them and the loser
// withdraws when its region view converges. Leaderless windows at tier t
// (crash detection in progress) *hold* the current tier-(t+1) candidacy
// instead of resigning it: resigning early would extend the upper tier's
// vacancy, and if this node really crashed its candidacy dies with it
// anyway. The upper tier is therefore leaderless for at most one regional
// failover plus one upper-tier failover after any single crash.
//
// Tier economics: regions default to the link-crash-tolerant omega_lc at
// interactive QoS (small groups, fast local failover); upper tiers default
// to the communication-efficient omega_l at background QoS — listeners
// never emit ALIVE payloads there, so an upper tier with hundreds of
// listeners costs O(candidates * members), not O(members^2).
//
// The coordinator holds a reference to the service and must be destroyed
// before (or together with) it; destroying both models a workstation
// crash. `shutdown()` is the graceful exit that broadcasts LEAVEs.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "hierarchy/topology.hpp"
#include "service/service.hpp"

namespace omega::hierarchy {

/// Join parameters of one tier of the hierarchy.
struct tier_options {
  fd::qos_spec qos{};
  adaptive::qos_class fd_class = adaptive::qos_class::interactive;
  /// Election algorithm of the tier's groups (service default when unset).
  std::optional<election::algorithm> alg;
  bool stability_ranking = false;
};

struct coordinator_options {
  /// Tier 0 (region) joins: everyone is a candidate.
  tier_options region{};
  /// Tiers >= 1 joins: listeners, candidates only by promotion.
  tier_options upper{};
  /// Request roster-scoped membership dissemination
  /// (`membership::hello_fanout::roster`) on the service at construction.
  /// Hierarchical deployments are exactly the shape where the cluster-wide
  /// HELLO anti-entropy dominates per-node cost (each node shares groups
  /// with a few peers yet gossips to all n), so the coordinator asks for
  /// scoping by default; set false to keep the service's configured fanout
  /// (the pre-scoping baseline fig12 compares against).
  bool scoped_hello = true;

  coordinator_options() {
    region.alg = election::algorithm::omega_lc;
    upper.alg = election::algorithm::omega_l;
    upper.fd_class = adaptive::qos_class::background;
  }
};

class hierarchy_coordinator {
 public:
  /// Fired on every leader change of any tier of this node's chain, after
  /// the coordinator reacted to it (tier index, new leader or nullopt).
  using tier_leader_callback =
      std::function<void(std::size_t, std::optional<process_id>)>;

  /// Registers `pid` with the service (if not already registered) and joins
  /// the node's whole group chain. The service must outlive the coordinator.
  hierarchy_coordinator(service::leader_election_service& svc, topology topo,
                        process_id pid, coordinator_options opts = {},
                        tier_leader_callback on_leader = nullptr);

  hierarchy_coordinator(const hierarchy_coordinator&) = delete;
  hierarchy_coordinator& operator=(const hierarchy_coordinator&) = delete;

  /// Gracefully leaves every joined tier group (LEAVEs are broadcast).
  /// Destruction without shutdown models a crash: the service instance is
  /// expected to be torn down with the coordinator.
  void shutdown();

  /// This node's current leader view at `tier` (nullopt while unknown).
  [[nodiscard]] std::optional<process_id> leader(std::size_t tier) const;
  /// The top-tier leader — what applications usually want.
  [[nodiscard]] std::optional<process_id> global_leader() const;

  /// Whether this node currently competes at `tier` (tier 0: always).
  [[nodiscard]] bool candidate_at(std::size_t tier) const;

  [[nodiscard]] const topology& topo() const { return topo_; }
  [[nodiscard]] std::size_t region() const { return region_; }
  [[nodiscard]] process_id pid() const { return pid_; }

  /// Candidacy transitions performed so far (for tests and benches).
  [[nodiscard]] std::uint64_t promotions() const { return promotions_; }
  [[nodiscard]] std::uint64_t demotions() const { return demotions_; }

 private:
  void on_tier_leader(std::size_t tier, std::optional<process_id> leader);
  void set_candidacy(std::size_t tier, bool want);
  void join_tier(std::size_t tier, bool candidate);
  [[nodiscard]] service::join_options join_opts(std::size_t tier,
                                                bool candidate) const;

  service::leader_election_service& svc_;
  topology topo_;
  process_id pid_;
  coordinator_options opts_;
  tier_leader_callback on_leader_;
  std::size_t region_ = 0;
  std::vector<bool> candidate_;  // per tier
  bool shutdown_ = false;
  std::uint64_t promotions_ = 0;
  std::uint64_t demotions_ = 0;
};

}  // namespace omega::hierarchy
